"""Periodic checkpoint policy: long-running servers bound their WAL.

Graceful shutdown already folds the WAL into a snapshot checkpoint; the
policy does the same at writer drain boundaries so a server that never
shuts down still keeps recovery replay bounded.  Checkpoints that find a
store transaction active are refused (as on shutdown) and retried later.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.quantum_database import QuantumConfig, QuantumDatabase
from repro.relational.wal import LogRecordType
from repro.server import CheckpointPolicy, QuantumServer, ServerConfig
from repro.workloads.flights import FlightDatabaseSpec, build_flight_database

SPEC = FlightDatabaseSpec(num_flights=2, rows_per_flight=4)


def make_qdb() -> QuantumDatabase:
    return QuantumDatabase(build_flight_database(SPEC), QuantumConfig(k=8))


def booking(name: str, flight: int) -> str:
    return (
        f"-Available({flight}, ?s), +Bookings('{name}', {flight}, ?s)"
        f" :-1 Available({flight}, ?s)"
    )


class TestPolicy:
    def test_due_thresholds(self):
        policy = CheckpointPolicy(max_wal_records=10, max_interval_s=60.0)
        assert not policy.due(9, 59.0)
        assert policy.due(10, 0.0)
        assert policy.due(1, 60.0)
        # Never due with nothing new to fold: a zero-record checkpoint
        # would rewrite the same snapshot for no recovery benefit.
        assert not policy.due(0, 60.0)

    def test_thresholdless_policy_rejected(self):
        from repro.errors import QuantumError

        with pytest.raises(QuantumError):
            CheckpointPolicy()

    def test_record_count_triggers_checkpoint(self):
        async def scenario():
            qdb = make_qdb()
            config = ServerConfig(
                checkpoint_policy=CheckpointPolicy(max_wal_records=5),
                checkpoint_on_shutdown=False,
            )
            async with QuantumServer(qdb, config) as server:
                async with server.session(client="mickey") as session:
                    for index in range(8):
                        await session.commit(booking(f"u{index}", 100 + index % 2))
                assert server.statistics.policy_checkpoints >= 1
                # The WAL was folded: a CHECKPOINT record exists and the
                # replay tail stays short.
                types = [r.record_type for r in qdb.database.wal.records()]
                assert LogRecordType.CHECKPOINT in types
            return qdb, server

        qdb, server = asyncio.run(scenario())
        # Pending transactions survived the policy checkpoints.
        assert qdb.pending_count > 0

    def test_interval_triggers_checkpoint(self):
        async def scenario():
            qdb = make_qdb()
            config = ServerConfig(
                checkpoint_policy=CheckpointPolicy(max_interval_s=0.0),
                checkpoint_on_shutdown=False,
            )
            async with QuantumServer(qdb, config) as server:
                async with server.session(client="mickey") as session:
                    await session.commit(booking("a", 100))
                    await session.commit(booking("b", 101))
                # Every drain checkpoints with a zero interval.
                assert server.statistics.policy_checkpoints >= 2
            return server

        asyncio.run(scenario())

    def test_idle_server_still_checkpoints_on_interval(self):
        async def scenario():
            qdb = make_qdb()
            config = ServerConfig(
                checkpoint_policy=CheckpointPolicy(max_interval_s=0.1),
                checkpoint_on_shutdown=False,
            )
            async with QuantumServer(qdb, config) as server:
                async with server.session(client="mickey") as session:
                    await session.commit(booking("a", 100))
                # No further traffic: the writer's bounded queue wait must
                # still reach the drain boundary and fold the records.
                await asyncio.sleep(0.4)
                assert server.statistics.policy_checkpoints >= 1
                types = [r.record_type for r in qdb.database.wal.records()]
                assert LogRecordType.CHECKPOINT in types

        asyncio.run(scenario())

    def test_no_policy_means_no_periodic_checkpoints(self):
        async def scenario():
            qdb = make_qdb()
            async with QuantumServer(qdb, ServerConfig()) as server:
                async with server.session(client="mickey") as session:
                    await session.commit(booking("a", 100))
                assert server.statistics.policy_checkpoints == 0
            # Shutdown still checkpoints (the existing behaviour).
            types = [r.record_type for r in qdb.database.wal.records()]
            assert LogRecordType.CHECKPOINT in types

        asyncio.run(scenario())

    def test_refused_checkpoint_arms_deferred_retry(self):
        """A refusal is never a silent skip: it counts and re-arms."""
        qdb = make_qdb()
        config = ServerConfig(
            checkpoint_policy=CheckpointPolicy(max_wal_records=1),
            checkpoint_on_shutdown=False,
        )
        server = QuantumServer(qdb, config)
        qdb.execute(booking("a", 100))  # fresh records: the policy is due
        txn = qdb.database.begin()
        txn.insert("Available", (1, "sX"))
        server._maybe_checkpoint()
        assert server.statistics.checkpoints_refused == 1
        assert server.statistics.checkpoints_deferred == 1
        assert server._checkpoint_retries == server._CHECKPOINT_RETRY_BUDGET
        assert server.statistics_report()["durability.checkpoint_deferred"] == 1
        txn.abort()

    def test_deferred_retry_fires_even_when_no_longer_due(self):
        """The retry runs at the next boundary even if the policy went quiet.

        After the refusal an external ``qdb.checkpoint()`` folds the WAL,
        so by the policy's own thresholds nothing is due any more — the
        armed retry must still take the checkpoint it owed.
        """
        qdb = make_qdb()
        config = ServerConfig(
            checkpoint_policy=CheckpointPolicy(max_wal_records=1),
            checkpoint_on_shutdown=False,
        )
        server = QuantumServer(qdb, config)
        qdb.execute(booking("a", 100))
        txn = qdb.database.begin()
        txn.insert("Available", (1, "sX"))
        server._maybe_checkpoint()  # refused, retry armed
        txn.abort()
        qdb.checkpoint()  # external fold: records_since drops to zero
        server._maybe_checkpoint()
        assert server.statistics.policy_checkpoints == 1
        assert server._checkpoint_retries == 0

    def test_deferred_retry_budget_is_bounded(self):
        """A transaction held open forever exhausts the retry budget."""
        qdb = make_qdb()
        config = ServerConfig(
            # Never due by its own thresholds: only armed retries attempt.
            checkpoint_policy=CheckpointPolicy(max_wal_records=10_000),
            checkpoint_on_shutdown=False,
        )
        server = QuantumServer(qdb, config)
        txn = qdb.database.begin()
        txn.insert("Available", (1, "sX"))
        server._checkpoint_retries = server._CHECKPOINT_RETRY_BUDGET
        for _ in range(server._CHECKPOINT_RETRY_BUDGET + 2):
            server._maybe_checkpoint()
        # One refusal per armed boundary, then the policy stops trying.
        assert (
            server.statistics.checkpoints_refused
            == server.statistics.checkpoints_deferred
            == server._CHECKPOINT_RETRY_BUDGET
        )
        assert server._checkpoint_retries == 0
        txn.abort()

    def test_refused_while_transaction_active(self):
        async def scenario():
            qdb = make_qdb()
            config = ServerConfig(
                checkpoint_policy=CheckpointPolicy(max_wal_records=1),
                checkpoint_on_shutdown=False,
            )
            async with QuantumServer(qdb, config) as server:
                # Hold a store transaction open across a drain boundary: the
                # policy must refuse (and count) rather than snapshot
                # uncommitted effects.
                txn = qdb.database.begin()
                txn.insert("Available", (1, "sX"))
                async with server.session(client="mickey") as session:
                    await session.commit(booking("a", 101))
                assert server.statistics.checkpoints_refused >= 1
                assert server.statistics.policy_checkpoints == 0
                txn.abort()
                # With the transaction gone the next drain checkpoints.
                async with server.session(client="minnie") as session:
                    await session.commit(booking("b", 101))
                assert server.statistics.policy_checkpoints >= 1

        asyncio.run(scenario())
