"""Grounding policies: when and which pending transactions to force-ground.

The semantics of quantum databases "allows the reduction of uncertainty
through grounding at any time; therefore, we keep the size of the composed
bodies small by forcibly grounding and executing some pending resource
transactions as needed.  Concretely, we ground transactions to keep the
maximum number of pending transactions in each partition below a parameter
k; when grounding, we start with the oldest transactions based on their
arrival time in the system" (Section 4).

:class:`GroundingPolicy` captures the ``k`` bound and the victim-selection
strategy.  The default matches the paper (oldest first); a newest-first
strategy is provided for the ablation benchmark that quantifies how much the
choice matters.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.errors import QuantumError
from repro.relational.planner import MYSQL_JOIN_LIMIT

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.partition import Partition
    from repro.core.quantum_state import PendingTransaction


class GroundingStrategy(enum.Enum):
    """Victim-selection order for forced grounding."""

    OLDEST_FIRST = "OLDEST_FIRST"
    NEWEST_FIRST = "NEWEST_FIRST"


@dataclass(frozen=True)
class GroundingPolicy:
    """Policy bounding the number of pending transactions per partition.

    Attributes:
        k: maximum number of pending transactions allowed per partition.
            The paper sweeps k over {20, 30, 40} and uses the maximum value
            61 (MySQL's join limit) for the arrival-order experiment.
        strategy: which pending transactions are grounded first when the
            bound is exceeded.
    """

    k: int = MYSQL_JOIN_LIMIT
    strategy: GroundingStrategy = GroundingStrategy.OLDEST_FIRST

    def __post_init__(self) -> None:
        if self.k < 1:
            raise QuantumError("the grounding bound k must be at least 1")

    def victims(self, partition: "Partition") -> list["PendingTransaction"]:
        """Pending transactions that must be grounded to restore the bound.

        Returns the transactions to ground, in the order they should be
        grounded, so that at most ``k`` remain pending afterwards.  Empty
        when the partition is already within bounds.
        """
        excess = len(partition) - self.k
        if excess <= 0:
            return []
        ordered = sorted(partition.pending, key=lambda entry: entry.sequence)
        if self.strategy is GroundingStrategy.OLDEST_FIRST:
            return ordered[:excess]
        return list(reversed(ordered[-excess:]))

    def within_bound(self, partition: "Partition") -> bool:
        """True if the partition respects the ``k`` bound."""
        return len(partition) <= self.k
