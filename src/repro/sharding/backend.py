"""Shard execution backends: in-process threads or worker processes.

The thread backend (the default) runs each partition's read-only grounding
plan on a :class:`~concurrent.futures.ThreadPoolExecutor` owned by the
shard — cheap, shares the writer's heap, but the GIL serializes the actual
search work.  The process backend ships the plan to a
:class:`~concurrent.futures.ProcessPoolExecutor` worker instead, so
independent partitions' grounding searches run truly in parallel.

Nothing in the writer's heap is shared with a worker process, so the plan
phase must travel as data.  The lifecycle is:

1. **Payload** — the writer snapshots exactly what the pure plan function
   (:func:`repro.core.quantum_state.compute_grounding_plan`) reads: the
   partition's pending entries (whose renamed transactions *are* the
   composed body, factor by factor), its cached-solution witness state,
   the target ids, the serializability mode, and the rows of every
   relation the partition touches (in insertion order, with the same
   secondary indexes — row enumeration order is what makes the worker's
   backtracking search bit-identical to the writer's).  All of it is a
   frozen, picklable :class:`PlanPayload`.
2. **Worker** — :func:`plan_in_worker` unpickles the payload, rebuilds a
   throwaway :class:`~repro.relational.database.Database` and
   :class:`~repro.core.partition.Partition` from it, and runs the same
   module-level plan computation the in-process path uses.  No locks, no
   callbacks, no writer state.
3. **Result** — the worker returns a picklable :class:`PlanResult` carrying
   transaction *ids* (not entry objects) plus the grounding substitution;
   the writer maps the ids back onto its own pending entries and applies
   the plan serially, exactly as it applies thread-backend plans.

Decisions are bit-identical across backends: the snapshot preserves row
insertion order and index structure, the plan function is deterministic,
and the mutating apply phase never leaves the single writer.
"""

from __future__ import annotations

import enum
import pickle
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.core.partition import Partition
from repro.core.serializability import SerializabilityMode
from repro.errors import QuantumError
from repro.logic.substitution import Substitution
from repro.relational.database import Database
from repro.relational.schema import Column
from repro.solver.grounding import GroundingSearch

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.quantum_state import PendingTransaction


class ShardBackend(enum.Enum):
    """Executor strategy of a shard (``QuantumConfig(shard_backend=...)``)."""

    THREAD = "thread"
    PROCESS = "process"

    @classmethod
    def coerce(cls, value: "ShardBackend | str") -> "ShardBackend":
        """Accept the enum itself or its lowercase string name."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            names = ", ".join(repr(member.value) for member in cls)
            raise QuantumError(
                f"unknown shard backend {value!r}; expected one of {names}"
            ) from None


@dataclass(frozen=True)
class TableSnapshot:
    """One relation's rows and structure, as shipped to a worker process.

    Attributes:
        name: relation name.
        columns: column declarations (types preserved).
        key: primary-key column names.
        indexes: column tuples of the secondary indexes; recreated in the
            worker so index-driven row enumeration matches the writer's.
        rows: row value tuples in the writer's insertion order — the order
            every scan, bucket and therefore grounding-search choice point
            enumerates.
    """

    name: str
    columns: tuple[Column, ...]
    key: tuple[str, ...]
    indexes: tuple[tuple[str, ...], ...]
    rows: tuple[tuple[Any, ...], ...]


@dataclass(frozen=True)
class PlanPayload:
    """Everything a worker process needs to plan one partition's grounding.

    Attributes:
        partition_id: the writer-side partition id (round-trip bookkeeping
            and error messages only; the worker's rebuilt partition gets a
            fresh local id).
        entries: the partition's full pending sequence, in serialization
            order.  The renamed transactions carried by the entries are the
            composed body, factor by factor.
        target_ids: ids of the transactions to ground now.
        serializability: STRICT or SEMANTIC.
        forced: whether this grounding was forced by the ``k`` bound.
        cached_solution: the partition's witness state — the last known
            satisfying substitution.  Shipped so the worker's rebuilt
            partition is a complete snapshot of the writer's; note the
            deterministic plan search does **not** consume it today (a
            witness-seeded search would change which grounding is found
            and break backend bit-identity), so it exists for
            introspection and for a future plan path that can use it on
            both backends symmetrically.
        tables: snapshots of every relation the partition touches.
    """

    partition_id: int
    entries: tuple["PendingTransaction", ...]
    target_ids: tuple[int, ...]
    serializability: SerializabilityMode
    forced: bool
    cached_solution: Substitution | None
    tables: tuple[TableSnapshot, ...]


@dataclass(frozen=True)
class PlanResult:
    """A worker process's plan, expressed in picklable ids and values.

    Attributes:
        partition_id: echo of :attr:`PlanPayload.partition_id`.
        satisfiable: False when no grounding exists (the writer raises the
            same invariant error the in-process path would).
        to_ground_ids: transaction ids to ground now, in execution order.
        remaining_ids: serialization order of the transactions that stay
            pending afterwards.
        reordered: whether the semantic mode fronted the targets.
        substitution: the grounding found (``None`` iff unsatisfiable).
        satisfied_atoms: per-transaction satisfied-optional counts at
            search time.
        forced: echo of :attr:`PlanPayload.forced`.
        search_nodes: grounding-search nodes the worker expanded (the
            writer folds this into its own search totals so the counters
            stay comparable across backends).
    """

    partition_id: int
    satisfiable: bool
    to_ground_ids: tuple[int, ...]
    remaining_ids: tuple[int, ...]
    reordered: bool
    substitution: Substitution | None
    satisfied_atoms: dict[int, int]
    forced: bool
    search_nodes: int = 0


def snapshot_tables(
    database: Database,
    relations: Iterable[str],
    cache: dict[str, TableSnapshot] | None = None,
) -> tuple[TableSnapshot, ...]:
    """Snapshot the given relations for shipping to a worker process.

    Relations the store has no table for are skipped: the grounding search
    treats a missing table as an empty relation, and the worker's rebuilt
    database reproduces exactly that by not creating it either.

    Args:
        database: the writer's store.
        relations: relation names to snapshot.
        cache: optional relation → snapshot memo.  Partitions of the same
            fan-out typically touch the same relations (every flight
            partition reads ``Available``/``Bookings``); sharing one cache
            across a ``ground()`` call's payloads walks each table once
            instead of once per group.  Safe because no mutation happens
            between the payload builds of one call (single-writer rule).
    """
    snapshots = []
    for relation in sorted(set(relations)):
        if cache is not None and relation in cache:
            snapshots.append(cache[relation])
            continue
        if not database.has_table(relation):
            continue
        table = database.table(relation)
        snapshot = TableSnapshot(
            name=relation,
            columns=tuple(table.schema.columns),
            key=tuple(table.schema.key),
            indexes=tuple(index.columns for index in table.indexes()[1:]),
            rows=tuple(row.values for row in table.scan()),
        )
        if cache is not None:
            cache[relation] = snapshot
        snapshots.append(snapshot)
    return tuple(snapshots)


def restore_database(snapshots: Sequence[TableSnapshot]) -> Database:
    """Rebuild a throwaway store from table snapshots (worker side).

    Rows are inserted directly at the table layer in snapshot order, so
    scans, hash-index buckets and every search built on them enumerate in
    the writer's order.
    """
    database = Database()
    for snapshot in snapshots:
        table = database.create_table(
            snapshot.name,
            list(snapshot.columns),
            list(snapshot.key) or None,
            indexes=snapshot.indexes,
        )
        for values in snapshot.rows:
            table.insert(values)
    return database


def build_payload(
    partition: Partition,
    targets: Sequence["PendingTransaction"],
    *,
    database: Database,
    serializability: SerializabilityMode,
    forced: bool,
    snapshot_cache: dict[str, TableSnapshot] | None = None,
) -> PlanPayload:
    """Assemble the picklable plan payload for one partition (writer side)."""
    return PlanPayload(
        partition_id=partition.partition_id,
        entries=partition.pending,
        target_ids=tuple(entry.transaction_id for entry in targets),
        serializability=serializability,
        forced=forced,
        cached_solution=partition.cached_solution,
        tables=snapshot_tables(database, partition.relations(), cache=snapshot_cache),
    )


def execute_payload(payload: PlanPayload) -> PlanResult:
    """Run the read-only plan computation for a shipped payload.

    This is the worker-side half of the process backend, but it is an
    ordinary function: the equivalence tests call it in-process to pin
    down that a payload round-trip plans exactly what the writer would.
    """
    from repro.core.quantum_state import compute_grounding_plan

    database = restore_database(payload.tables)
    search = GroundingSearch(database)
    partition = Partition(payload.entries)
    partition.cached_solution = payload.cached_solution
    wanted = set(payload.target_ids)
    targets = [entry for entry in payload.entries if entry.transaction_id in wanted]
    plan, substitution, satisfied = compute_grounding_plan(
        search, payload.serializability, partition, targets
    )
    return PlanResult(
        partition_id=payload.partition_id,
        satisfiable=substitution is not None,
        to_ground_ids=tuple(e.transaction_id for e in plan.to_ground),
        remaining_ids=tuple(e.transaction_id for e in plan.remaining_order),
        reordered=plan.reordered,
        substitution=substitution,
        satisfied_atoms=dict(satisfied),
        forced=payload.forced,
        search_nodes=search.totals.nodes,
    )


def plan_in_worker(blob: bytes) -> PlanResult:
    """Process-pool entry point: unpickle, plan, return the picklable result.

    A module-level function (pickled by reference) taking the payload as an
    explicit byte string: the writer pickles once, records the shipped
    size, and the executor's own argument pickling stays O(bytes) with no
    second object walk.
    """
    return execute_payload(pickle.loads(blob))


def dump_payload(payload: PlanPayload) -> bytes:
    """Pickle a payload with the highest protocol (writer side)."""
    return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
