"""Random k-SAT instance generation for the phase-transition ablation.

Section 6 of the paper argues that resource-allocation satisfiability
problems are usually comfortably under-constrained (many free seats, few
pending transactions) and only become hard near a critical
constraints-to-variables ratio, citing the classic SAT phase-transition
result.  The ablation benchmark sweeps the clause/variable ratio of random
3-SAT instances through the critical region (≈ 4.27 for 3-SAT) and measures
DPLL effort and the satisfiable fraction, reproducing the easy-hard-easy
pattern that motivates the paper's "switch to aggressive fixing when the
problem gets hard" strategy.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.errors import SolverError
from repro.solver.sat import CNF, Clause, Literal

#: The empirically known critical clause/variable ratio for random 3-SAT.
CRITICAL_RATIO_3SAT = 4.27


def random_ksat(
    num_variables: int,
    num_clauses: int,
    *,
    k: int = 3,
    rng: random.Random | None = None,
) -> CNF:
    """Generate a uniform random k-SAT instance.

    Each clause picks ``k`` distinct variables uniformly at random and
    negates each with probability 1/2.

    Args:
        num_variables: number of propositional variables (named ``x1..xn``).
        num_clauses: number of clauses.
        k: literals per clause.
        rng: optional random generator for reproducibility.

    Raises:
        SolverError: if ``k`` exceeds the number of variables.
    """
    if k > num_variables:
        raise SolverError(f"cannot pick {k} distinct variables out of {num_variables}")
    if num_variables <= 0 or num_clauses < 0:
        raise SolverError("num_variables must be positive and num_clauses non-negative")
    rng = rng or random.Random()
    names = [f"x{i}" for i in range(1, num_variables + 1)]
    cnf = CNF()
    for _ in range(num_clauses):
        chosen = rng.sample(names, k)
        literals = tuple(
            Literal(name, positive=rng.random() < 0.5) for name in chosen
        )
        cnf.add_clause(Clause(literals))
    return cnf


def ratio_sweep(
    num_variables: int,
    ratios: Sequence[float],
    *,
    k: int = 3,
    seed: int = 0,
) -> list[tuple[float, CNF]]:
    """Generate one instance per clause/variable ratio in ``ratios``."""
    rng = random.Random(seed)
    instances: list[tuple[float, CNF]] = []
    for ratio in ratios:
        num_clauses = max(1, round(ratio * num_variables))
        instances.append((ratio, random_ksat(num_variables, num_clauses, k=k, rng=rng)))
    return instances
