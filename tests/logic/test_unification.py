"""Tests for most general unifiers and unification predicates (Defs 3.2/3.3)."""

from __future__ import annotations


from repro.logic.atoms import Atom
from repro.logic.formula import Conjunction, Equality, FALSE, TRUE
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Variable
from repro.logic.unification import (
    any_unifiable,
    match_ground_atom,
    most_general_unifier,
    unifiable,
    unification_predicate,
    unify_terms,
)

V1, V2, V3, V4 = (Variable(f"v{i}") for i in range(1, 5))


class TestUnifyTerms:
    def test_variable_to_constant(self):
        theta = unify_terms(V1, Constant(5))
        assert theta is not None and theta[V1] == Constant(5)

    def test_constant_clash(self):
        assert unify_terms(Constant(1), Constant(2)) is None

    def test_respects_existing_bindings(self):
        theta = Substitution({V1: 1})
        assert unify_terms(V1, Constant(2), theta) is None
        extended = unify_terms(V1, Constant(1), theta)
        assert extended == theta


class TestMGU:
    def test_paper_example(self):
        # mgu of R(1, v1, v2) and R(v3, 2, v4) is {v1/2, v2/v4, v3/1}.
        left = Atom.body("R", [1, V1, V2])
        right = Atom.body("R", [V3, 2, V4])
        theta = most_general_unifier(left, right)
        assert theta is not None
        assert theta.apply_term(V1) == Constant(2)
        assert theta.apply_term(V3) == Constant(1)
        assert theta.apply_term(V2) == theta.apply_term(V4)

    def test_different_relations(self):
        assert most_general_unifier(Atom.body("R", [V1]), Atom.body("S", [V1])) is None

    def test_different_arities(self):
        assert most_general_unifier(Atom.body("R", [V1]), Atom.body("R", [V1, V2])) is None

    def test_constant_clash(self):
        assert most_general_unifier(Atom.body("R", [1]), Atom.body("R", [2])) is None

    def test_mgu_is_most_general(self):
        # Any other unifier factors through the mgu (Definition 3.2).
        left = Atom.body("R", [V1, V2])
        right = Atom.body("R", [V3, 5])
        theta = most_general_unifier(left, right)
        assert theta is not None
        # A specific unifier: v1=v3=7, v2=5.
        nu = Substitution({V1: 7, V3: 7, V2: 5})
        nu_prime = Substitution({V1: 7, V3: 7})
        assert theta.compose(nu_prime).apply_term(V1) == Constant(7)
        assert nu.apply_atom(left) == nu.apply_atom(right)

    def test_repeated_variables(self):
        left = Atom.body("R", [V1, V1])
        right = Atom.body("R", [1, 2])
        assert most_general_unifier(left, right) is None
        right_ok = Atom.body("R", [1, 1])
        assert most_general_unifier(left, right_ok) is not None


class TestUnificationPredicate:
    def test_paper_example_predicate(self):
        left = Atom.body("R", [1, V1, V2])
        right = Atom.body("R", [V3, 2, V4])
        predicate = unification_predicate(left, right)
        assert isinstance(predicate, (Conjunction, Equality))
        equalities = (
            predicate.parts if isinstance(predicate, Conjunction) else (predicate,)
        )
        rendered = {repr(eq) for eq in equalities}
        assert len(equalities) == 3
        assert any("v1" in r and "2" in r for r in rendered)
        assert any("v3" in r and "1" in r for r in rendered)

    def test_trivially_false_when_not_unifiable(self):
        assert unification_predicate(Atom.body("R", [1]), Atom.body("R", [2])) is FALSE
        assert unification_predicate(Atom.body("R", [1]), Atom.body("S", [1])) is FALSE

    def test_trivially_true_for_identical_ground_atoms(self):
        assert unification_predicate(Atom.body("R", [1, "a"]), Atom.body("R", [1, "a"])) is TRUE


class TestHelpers:
    def test_unifiable(self):
        assert unifiable(Atom.body("R", [V1]), Atom.body("R", [5]))
        assert not unifiable(Atom.body("R", [1]), Atom.body("R", [2]))

    def test_any_unifiable(self):
        left = [Atom.body("R", [1]), Atom.body("S", [V1])]
        right = [Atom.body("T", [2]), Atom.body("S", [3])]
        assert any_unifiable(left, right)
        assert not any_unifiable([Atom.body("R", [1])], [Atom.body("R", [2])])

    def test_match_ground_atom(self):
        pattern = Atom.body("R", [V1, V1, "x"])
        ground = Atom.body("R", [3, 3, "x"])
        theta = match_ground_atom(pattern, ground)
        assert theta is not None and theta[V1] == Constant(3)
        assert match_ground_atom(pattern, Atom.body("R", [3, 4, "x"])) is None
        assert match_ground_atom(pattern, Atom.body("R", [3, 3, "y"])) is None
