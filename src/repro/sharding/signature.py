"""The signature-based routing index over partition atoms.

``PartitionManager.merged_for`` decides which partition an incoming
resource transaction belongs to by pairwise unification against *every*
atom of *every* partition — measured at ~36% of the admission path on the
Figure 7 workload, and growing with the pending count.  Almost all of that
work answers "no": on constant-pinned workloads (each booking names its
flight) a transaction can only ever unify with the one partition holding
the same constants.

:class:`SignatureIndex` turns that observation into a conservative
prefilter.  For every partition it records, per ``(relation, arity)`` and
per argument position, which constants appear there and whether any atom
leaves the position variable (a *wildcard*).  Two atoms of the same
relation and arity unify exactly when every position is compatible —
equal constants, or a variable on either side — so a partition can only
contain a unifier for a probe atom if, at every constant position of the
probe, the partition shows either that constant or a wildcard.  The
per-position aggregation makes the test a superset of the truth
(compatibility is checked position-by-position rather than atom-by-atom),
which is precisely what a prefilter needs: **no false negatives, ever** —
every partition the exhaustive scan would find is a candidate, and the
exact scan then runs only on candidates, keeping decisions bit-identical.

The index is an inverted one: postings map ``(relation, arity)``,
``(relation, arity, position, constant)`` and ``(relation, arity,
position)``-wildcard keys to partition-id sets, so candidate lookup is a
handful of set intersections — near-O(1) on constant-pinned workloads,
independent of the number of partitions.

Imprecision fallback: constants are posted under their Python value, which
must be hashable.  An unhashable constant (exotic, but legal in an atom)
cannot be posted; its partition is marked *imprecise* and is returned as a
candidate for every probe, and an unhashable probe constant simply leaves
its position unconstrained.  Either way the exact scan still decides, so
the fallback degrades performance, never correctness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.logic.atoms import Atom
from repro.logic.terms import Constant

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.partition import Partition
    from repro.core.quantum_state import PendingTransaction

#: Tagged posting keys: ("r", relation, arity) — partition has an atom of
#: this shape; ("c", relation, arity, position, value) — with this constant
#: at this position; ("w", relation, arity, position) — with a variable at
#: this position.
PostingKey = tuple

_EMPTY: frozenset[int] = frozenset()


@dataclass
class SignatureIndexStatistics:
    """Counters describing routing-index behaviour.

    Attributes:
        probes: candidate lookups served.
        imprecise_probes: lookups that had to include imprecise partitions
            (unhashable constants) — the fallback path.
        postings: live posting entries (gauge, kept current).
    """

    probes: int = 0
    imprecise_probes: int = 0
    postings: int = 0


class SignatureIndex:
    """Conservative constant-set/wildcard index over partition atoms.

    Maintained incrementally: :meth:`extend` posts one new pending entry's
    atoms (signatures only grow on admission), :meth:`refresh` rebuilds one
    partition after a structural change (merge, grounding), and
    :meth:`discard` forgets a partition.  :meth:`candidates` answers the
    routing question.
    """

    def __init__(self) -> None:
        #: posting key → partition ids.
        self._postings: dict[PostingKey, set[int]] = {}
        #: partition id → posting keys it occupies (for cheap removal).
        self._keys: dict[int, set[PostingKey]] = {}
        #: partitions holding an unhashable constant; always candidates.
        self._imprecise: set[int] = set()
        self.statistics = SignatureIndexStatistics()

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, partition_id: int) -> bool:
        return partition_id in self._keys

    def is_imprecise(self, partition_id: int) -> bool:
        """True when the partition fell back to always-candidate routing."""
        return partition_id in self._imprecise

    # -- maintenance ---------------------------------------------------------

    def add(self, partition: "Partition") -> None:
        """Index a partition from scratch (its current atoms)."""
        pid = partition.partition_id
        self._keys.setdefault(pid, set())
        self._post_atoms(pid, partition.atoms())

    def extend(self, partition: "Partition", entry: "PendingTransaction") -> None:
        """Post one newly appended pending entry (incremental admission).

        Signatures only grow on appends, so no existing posting needs to be
        revisited — this is the steady-state maintenance cost: a few set
        insertions per admitted transaction.
        """
        pid = partition.partition_id
        self._keys.setdefault(pid, set())
        atoms = tuple(entry.renamed.body) + tuple(entry.renamed.updates)
        self._post_atoms(pid, atoms)

    def refresh(self, partition: "Partition") -> None:
        """Rebuild one partition's postings after a structural change."""
        self.discard(partition.partition_id)
        self.add(partition)

    def discard(self, partition_id: int) -> None:
        """Forget a partition (merged away, emptied, or rejected empty)."""
        for key in self._keys.pop(partition_id, ()):
            posting = self._postings.get(key)
            if posting is not None:
                posting.discard(partition_id)
                if not posting:
                    del self._postings[key]
                self.statistics.postings -= 1
        self._imprecise.discard(partition_id)

    def _post(self, pid: int, key: PostingKey) -> None:
        if key not in self._keys[pid]:
            self._keys[pid].add(key)
            self._postings.setdefault(key, set()).add(pid)
            self.statistics.postings += 1

    def _post_atoms(self, pid: int, atoms: Iterable[Atom]) -> None:
        for atom in atoms:
            relation, arity = atom.relation, atom.arity
            self._post(pid, ("r", relation, arity))
            for position, term in enumerate(atom.terms):
                if isinstance(term, Constant):
                    try:
                        self._post(pid, ("c", relation, arity, position, term.value))
                    except TypeError:
                        # Unhashable constant: this partition cannot be
                        # routed precisely; fall back to always-candidate.
                        self._imprecise.add(pid)
                else:
                    self._post(pid, ("w", relation, arity, position))

    # -- routing -------------------------------------------------------------

    def candidates(self, atoms: Sequence[Atom]) -> frozenset[int]:
        """Partition ids that could hold a unifier for any of ``atoms``.

        Conservative: a superset of the partitions the exhaustive
        pairwise-unification scan would report (imprecise partitions are
        always included).  The caller confirms each candidate with the
        exact scan, so routing decisions stay bit-identical to the
        unindexed path.
        """
        self.statistics.probes += 1
        found: set[int] = set()
        for atom in atoms:
            relation, arity = atom.relation, atom.arity
            base = self._postings.get(("r", relation, arity))
            if not base:
                continue
            narrowed: set[int] | None = None
            for position, term in enumerate(atom.terms):
                if not isinstance(term, Constant):
                    continue
                try:
                    with_constant = self._postings.get(
                        ("c", relation, arity, position, term.value), _EMPTY
                    )
                except TypeError:
                    # Unhashable probe constant: leave the position
                    # unconstrained (conservative).
                    continue
                with_wildcard = self._postings.get(
                    ("w", relation, arity, position), _EMPTY
                )
                allowed = set(with_constant) | set(with_wildcard)
                narrowed = allowed if narrowed is None else (narrowed & allowed)
                if not narrowed:
                    break
            if narrowed is None:
                found |= base
            else:
                found |= narrowed
        if self._imprecise:
            self.statistics.imprecise_probes += 1
            found |= self._imprecise
        return frozenset(found)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SignatureIndex partitions={len(self._keys)} "
            f"postings={self.statistics.postings}>"
        )
