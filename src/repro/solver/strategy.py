"""Admission-search strategy selection: the ``AdmissionSearchConfig`` API.

The witness-extension admission search used to be hardwired to the plain
chronological backtracking of :class:`~repro.solver.grounding
.GroundingSearch`.  This module is the configuration surface of the
pluggable subsystem that replaced it — a frozen, validated config nested
in ``QuantumConfig`` (following the ``DurabilityConfig`` precedent):

>>> config = AdmissionSearchConfig(strategy="bnb", node_budget=10_000)
>>> config.strategy, config.fastpath_enabled
('bnb', True)

and the single dispatch point every execution mode funnels through:
:func:`dispatch_find_one` runs inside the pure ``compute_admission``, so
inline admission, thread lanes and process-shipped ``AdmissionPayload``
workers all honor the same strategy bit-identically.

Strategies:

* ``"backtracking"`` — the existing copy-per-step search, unchanged; the
  default, byte-for-byte the seed behaviour.
* ``"bnb"`` — branch-and-bound with an undoable trail and structural
  pruning (:mod:`repro.solver.bnb`); first solution, and therefore every
  accept/reject decision, provably identical to backtracking.

Per-shape fast paths (:mod:`repro.solver.fastpath`) dispatch before the
general search; they default on under ``"bnb"`` and off under
``"backtracking"`` (set ``fastpath=True``/``False`` to override).  The
opt-in sampling estimator (:mod:`repro.solver.sampling`) engages only
when an explicit :class:`SamplingConfig` is present — never silently.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QuantumError

#: Exact-search strategies selectable through ``AdmissionSearchConfig``.
STRATEGIES = ("backtracking", "bnb")


@dataclass(frozen=True)
class SamplingConfig:
    """Opt-in approximate admission for partitions too large to search.

    Attributes:
        threshold: minimum number of relational atoms in the solved
            formula (the composed body plus the new factor) before the
            estimator replaces the exact full solve.  Smaller partitions
            always search exactly.
        samples: number of seeded greedy descents per admission; the
            estimator accepts only when a descent reaches a *verified*
            complete grounding, so sampling can produce false negatives
            but never a false accept.
        seed: RNG seed; a fresh ``random.Random(seed)`` per admission
            keeps decisions deterministic across runs and across
            execution modes (inline, lanes, shipped workers).
    """

    threshold: int = 12
    samples: int = 32
    seed: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.threshold, int) or self.threshold < 1:
            raise QuantumError(
                f"sampling threshold must be a positive int, got {self.threshold!r}"
            )
        if not isinstance(self.samples, int) or self.samples < 1:
            raise QuantumError(
                f"sampling samples must be a positive int, got {self.samples!r}"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise QuantumError(f"sampling seed must be an int, got {self.seed!r}")


@dataclass(frozen=True)
class AdmissionSearchConfig:
    """How admission searches for groundings of composed bodies.

    Attributes:
        strategy: ``"backtracking"`` (the default; the seed search) or
            ``"bnb"`` (trail-based branch-and-bound; identical decisions,
            fewer expanded nodes).
        node_budget: optional cap on search nodes per find; exhausting it
            surfaces as a typed outcome (``AdmissionSearchExhausted``, a
            ``TransactionRejected`` subclass) instead of an unbounded
            stall.  ``None`` means unbounded.
        fastpath: per-shape fast paths for conjunctive and existential
            bodies, tried before the general search.  ``None`` (default)
            enables them exactly when ``strategy="bnb"`` so the default
            config stays byte-identical to the seed behaviour.
        sampling: the approximate-admission estimator; ``None`` (default)
            disables it — sampling never engages without this explicit
            opt-in.
    """

    strategy: str = "backtracking"
    node_budget: int | None = None
    fastpath: bool | None = None
    sampling: SamplingConfig | None = None

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise QuantumError(
                f"unknown admission search strategy {self.strategy!r} "
                f"(expected one of {STRATEGIES})"
            )
        if self.node_budget is not None and (
            not isinstance(self.node_budget, int) or self.node_budget < 1
        ):
            raise QuantumError(
                f"node_budget must be a positive int or None, got {self.node_budget!r}"
            )
        if self.fastpath is not None and not isinstance(self.fastpath, bool):
            raise QuantumError(
                f"fastpath must be True, False or None, got {self.fastpath!r}"
            )
        if self.sampling is not None and not isinstance(self.sampling, SamplingConfig):
            raise QuantumError(
                f"sampling must be a SamplingConfig or None, got {self.sampling!r}"
            )

    @property
    def fastpath_enabled(self) -> bool:
        """Whether shape fast paths dispatch before the general search."""
        if self.fastpath is None:
            return self.strategy == "bnb"
        return self.fastpath


def dispatch_find_one(
    search,
    config: AdmissionSearchConfig | None,
    formula,
    *,
    required=None,
    initial=None,
):
    """Run one find-one under the configured strategy.

    Returns ``(GroundingResult, method)`` where ``method`` names the
    search that actually answered (``"fastpath"``, ``"bnb"`` or
    ``"backtracking"``) — the value admission surfaces on the probe and
    the wire-visible commit result.  ``config=None`` (and the default
    config) is byte-for-byte the legacy ``search.find_one`` call.

    This is deliberately the *only* place a strategy is picked: it runs
    inside the pure ``compute_admission``, so the inline writer, thread
    lanes and process-shipped workers cannot diverge.
    """
    from repro.solver.bnb import find_one_bnb
    from repro.solver.fastpath import find_one_fastpath

    if config is None:
        return (
            search.find_one(formula, required=required, initial=initial),
            "backtracking",
        )
    if config.fastpath_enabled:
        result = find_one_fastpath(
            search,
            formula,
            required=required,
            initial=initial,
            node_budget=config.node_budget,
        )
        if result is not None:
            return result, "fastpath"
    if config.strategy == "bnb":
        return (
            find_one_bnb(
                search,
                formula,
                required=required,
                initial=initial,
                node_budget=config.node_budget,
            ),
            "bnb",
        )
    return (
        search.find_one(
            formula,
            required=required,
            initial=initial,
            node_budget=config.node_budget,
        ),
        "backtracking",
    )
