"""Worker shards: disjoint partition ownership plus a plan executor.

Partitions are independent by construction — no atom of one unifies with
any atom of another — so the set of partitions can be split across worker
shards without any cross-shard coordination on the hot path.  A
:class:`Shard` owns a disjoint set of partitions (keyed by partition id,
which is also what the per-partition witness store is keyed by, so witness
state hands off between shards for free) and runs the read-only grounding
*plan* phase for its partitions on its own executor.

The executor is created lazily (guarded by a lock: concurrent first
submissions must not race two executors into existence and leak one) and
comes in two flavours, selected by
:class:`~repro.sharding.backend.ShardBackend`:

* ``THREAD`` — a :class:`~concurrent.futures.ThreadPoolExecutor`; plans
  share the writer's heap and are submitted as plain closures, but the GIL
  serializes the actual search work.
* ``PROCESS`` — a :class:`~concurrent.futures.ProcessPoolExecutor`; plans
  arrive as pickled :class:`~repro.sharding.backend.PlanPayload` bytes and
  run truly in parallel (see :mod:`repro.sharding.backend` for the payload
  lifecycle).

Ownership is tracked purely by partition id and work is submitted as
``submit(fn, *args)`` either way — nothing on the interface exposes the
executor type.
"""

from __future__ import annotations

import threading
from concurrent.futures import (
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import TYPE_CHECKING, Any, Callable, Iterator

from repro.sharding.backend import ShardBackend

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.partition import Partition


class Shard:
    """One worker shard: a disjoint slice of the partition space.

    Attributes:
        shard_id: position of the shard in the manager's shard ring.
        partitions: the owned partitions, keyed by partition id.
        backend: the executor strategy (thread pool or process pool).
    """

    def __init__(
        self,
        shard_id: int,
        *,
        workers: int = 1,
        backend: ShardBackend | str = ShardBackend.THREAD,
    ) -> None:
        self.shard_id = shard_id
        self.backend = ShardBackend.coerce(backend)
        self.partitions: dict[int, "Partition"] = {}
        self._workers = max(1, workers)
        self._executor: Executor | None = None
        #: Guards lazy executor creation *and* close: without it two
        #: concurrent first submissions could each observe ``None`` and
        #: create two executors, leaking one (and, for the process
        #: backend, its worker processes).
        self._executor_lock = threading.Lock()

    # -- ownership -----------------------------------------------------------

    def own(self, partition: "Partition") -> None:
        """Take ownership of a partition (tagging it for lane assertions)."""
        self.partitions[partition.partition_id] = partition
        partition.owner_shard_id = self.shard_id

    def disown(self, partition_id: int) -> None:
        """Release ownership of a partition (merge or drop)."""
        partition = self.partitions.pop(partition_id, None)
        if partition is not None:
            partition.owner_shard_id = None

    def owns(self, partition_id: int) -> bool:
        """True when this shard owns the partition."""
        return partition_id in self.partitions

    def __len__(self) -> int:
        return len(self.partitions)

    def __iter__(self) -> Iterator["Partition"]:
        return iter(self.partitions.values())

    def pending_count(self) -> int:
        """Total pending transactions across the owned partitions."""
        return sum(len(p) for p in self.partitions.values())

    # -- execution -----------------------------------------------------------

    @property
    def started(self) -> bool:
        """True once the shard's executor has been created."""
        return self._executor is not None

    def submit(self, fn: Callable[..., Any], *args: Any) -> "Future[Any]":
        """Run ``fn(*args)`` on this shard's worker (lazily started)."""
        executor = self._executor
        if executor is None:
            with self._executor_lock:
                if self._executor is None:
                    self._executor = self._create_executor()
                executor = self._executor
        return executor.submit(fn, *args)

    def _create_executor(self) -> Executor:
        """Build the backend's executor (callers hold the creation lock)."""
        if self.backend is ShardBackend.PROCESS:
            return ProcessPoolExecutor(max_workers=self._workers)
        return ThreadPoolExecutor(
            max_workers=self._workers,
            thread_name_prefix=f"repro-shard-{self.shard_id}",
        )

    def warm(self) -> None:
        """Start the executor now and, for process pools, spawn its workers.

        Idempotent.  The lane-parallel admission pipeline ships witness
        searches to the process pool on its hot path; without warming, the
        first shipped admission of each shard would pay the worker-process
        spawn inside the latency-sensitive window (and inside benchmark
        timing sections).  One trivial round-trip per worker forces the
        pool to its full size up front.
        """
        from repro.sharding.backend import worker_ready

        if self.backend is not ShardBackend.PROCESS:
            with self._executor_lock:
                if self._executor is None:
                    self._executor = self._create_executor()
            return
        futures = [self.submit(worker_ready) for _ in range(self._workers)]
        for future in futures:
            future.result()

    def close(self) -> None:
        """Shut the shard's executor down (idempotent; ownership survives).

        Joins the workers — threads or processes — before returning, so a
        closed shard never leaks a pool; the executor restarts lazily on
        the next :meth:`submit`.
        """
        with self._executor_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Shard #{self.shard_id} backend={self.backend.value} "
            f"partitions={len(self.partitions)} pending={self.pending_count()}>"
        )
