"""Concurrent sessions — admission throughput at 1/4/16 simulated clients.

Runs the Figure 7 scalability workload (Random arrival order, entangled
pairs, per-flight partitioning) through the asyncio session layer with a
varying number of *closed-loop* simulated clients: each client has one
request outstanding and pays a simulated client-side latency (think time +
network round trip, ``CLIENT_LATENCY``) before every commit — the standard
closed-loop model for server benchmarks.

What the experiment shows:

* with **one** client the server is latency-bound: every commit pays the
  client-side delay in series, and the admission pipeline idles between
  requests;
* with **16** clients the single-writer admission queue stays full, the
  client-side delays overlap, and the writer group-commits the drained
  runs (one durability write per run) — throughput approaches the CPU
  bound of the admission path itself, which the PR-1 witness cache keeps
  short;
* accept/reject decisions are **identical to the synchronous path**: the
  writer admits strictly in queue order through the ordinary admission
  routine, so replaying the recorded admission order through
  ``QuantumDatabase.execute`` must reproduce every decision exactly.

The headline assertion is ≥2x admission throughput at 16 sessions vs 1;
on a single-core host the expected ratio is roughly
``(CLIENT_LATENCY + work) / work`` ≈ 3x at the smoke scale.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from benchmarks.conftest import BENCH_SCALE, report
from repro.core.quantum_database import QuantumConfig, QuantumDatabase
from repro.experiments.figure7 import default_parameters, paper_parameters
from repro.experiments.report import format_table
from repro.server import QuantumServer
from repro.workloads.arrival_orders import ArrivalOrder
from repro.workloads.entangled_workload import generate_workload
from repro.workloads.flights import FlightDatabaseSpec, build_flight_database

#: Simulated per-request client-side latency (think time + network round
#: trip), the closed-loop delay each client pays before submitting its next
#: commit.  10 ms is a conservative intra-region RTT; it must comfortably
#: exceed the per-transaction admission work (~2-12 ms across the sweep)
#: for the concurrency win to be visible on a single-core host.
CLIENT_LATENCY = 0.010

#: Closed-loop client counts to sweep.
CLIENT_COUNTS = (1, 4, 16)


def _parameters(smoke: bool):
    if BENCH_SCALE == "paper":
        return paper_parameters()
    parameters = default_parameters()
    if smoke:
        # Trim the sweep so the whole smoke selection stays within the
        # `make check` budget.
        return type(parameters)(
            flight_counts=parameters.flight_counts[:2],
            rows_per_flight=parameters.rows_per_flight,
            ks=parameters.ks[:1],
            seed=parameters.seed,
        )
    return parameters


def _record_admission_order(qdb: QuantumDatabase) -> list:
    """Wrap ``commit_batch`` to capture the writer's global admission order."""
    admitted: list = []
    original = qdb.commit_batch

    def recording(transactions, **kwargs):
        admitted.extend(transactions)
        return original(transactions, **kwargs)

    qdb.commit_batch = recording  # type: ignore[method-assign]
    return admitted


async def _serve(spec, *, k: int, seed: int, clients: int):
    """One server run: returns (decisions, admission order, seconds, stats)."""
    workload = generate_workload(spec, ArrivalOrder.RANDOM, seed=seed)
    transactions = list(workload.transactions)
    qdb = QuantumDatabase(build_flight_database(spec), QuantumConfig(k=k))
    admitted = _record_admission_order(qdb)
    decisions: dict[int, bool] = {}
    streams = [transactions[i::clients] for i in range(clients)]

    async def client(index: int, stream) -> None:
        async with server.session(client=f"client{index}") as session:
            for transaction in stream:
                await asyncio.sleep(CLIENT_LATENCY)
                result = await session.commit(transaction)
                decisions[result.transaction_id] = result.committed

    async with QuantumServer(qdb) as server:
        start = time.perf_counter()
        await asyncio.gather(
            *(client(index, stream) for index, stream in enumerate(streams))
        )
        elapsed = time.perf_counter() - start
        await server.ground_all()
        stats = server.statistics_report()
    return decisions, admitted, elapsed, stats


def _replay_decisions(spec, *, k: int, admitted) -> dict[int, bool]:
    """The synchronous path: the recorded admission order through execute()."""
    qdb = QuantumDatabase(build_flight_database(spec), QuantumConfig(k=k))
    return {
        transaction.transaction_id: qdb.execute(transaction).committed
        for transaction in admitted
    }


@pytest.mark.smoke
def test_concurrent_sessions_throughput(benchmark, smoke_run):
    parameters = _parameters(smoke_run)
    rows = []
    throughput: dict[int, float] = {count: 0.0 for count in CLIENT_COUNTS}
    total = {count: 0.0 for count in CLIENT_COUNTS}
    transactions_total = 0

    def sweep():
        nonlocal transactions_total
        for num_flights in parameters.flight_counts:
            spec = FlightDatabaseSpec(
                num_flights=num_flights, rows_per_flight=parameters.rows_per_flight
            )
            for k in parameters.ks:
                point = {}
                for clients in CLIENT_COUNTS:
                    decisions, admitted, elapsed, stats = asyncio.run(
                        _serve(spec, k=k, seed=parameters.seed, clients=clients)
                    )
                    # Decisions identical to the synchronous path on the
                    # same (recorded) arrival order — the single writer
                    # admits through the ordinary admission routine.
                    assert len(admitted) == len(decisions)
                    replayed = _replay_decisions(spec, k=k, admitted=admitted)
                    assert replayed == decisions
                    point[clients] = (len(decisions), elapsed, stats)
                    total[clients] += elapsed
                count = point[CLIENT_COUNTS[0]][0]
                transactions_total += count
                rows.append(
                    [
                        num_flights,
                        k,
                        count,
                        *(round(point[c][1], 3) for c in CLIENT_COUNTS),
                        *(round(point[c][0] / point[c][1], 1) for c in CLIENT_COUNTS),
                        point[CLIENT_COUNTS[-1]][2]["server.max_commit_run"],
                        point[CLIENT_COUNTS[-1]][2]["cache.witness_hits"],
                    ]
                )

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    for clients in CLIENT_COUNTS:
        throughput[clients] = transactions_total / total[clients]
    speedup = throughput[16] / throughput[1]
    report(
        "Concurrent sessions (Figure 7 workload, closed-loop clients, "
        f"{CLIENT_LATENCY * 1000:.0f} ms simulated client latency)",
        format_table(
            [
                "#flights",
                "k",
                "#txns",
                *(f"{c} cli (s)" for c in CLIENT_COUNTS),
                *(f"{c} cli (txn/s)" for c in CLIENT_COUNTS),
                "max group",
                "witness hits",
            ],
            rows,
        )
        + f"\naggregate speedup 16 vs 1 clients: {speedup:.2f}x",
    )
    # Headline acceptance criterion: >=2x admission throughput at 16
    # sessions vs 1 session, with identical accept/reject decisions
    # (asserted per sweep point above).
    assert speedup >= 2.0, (throughput[1], throughput[16])
