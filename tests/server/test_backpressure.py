"""Per-session backpressure: one client's backlog must not starve the rest.

The global queue bound still applies; ``ServerConfig(session_quota=N)``
additionally caps how many items a single session may have queued at once,
raising the typed :class:`~repro.errors.SessionBackpressure` instead of
letting that session occupy the shared queue.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.quantum_database import QuantumConfig, QuantumDatabase
from repro.errors import SessionBackpressure
from repro.server import QuantumServer, ServerConfig
from repro.workloads.flights import FlightDatabaseSpec, build_flight_database

SPEC = FlightDatabaseSpec(num_flights=2, rows_per_flight=6)


def make_qdb() -> QuantumDatabase:
    return QuantumDatabase(build_flight_database(SPEC), QuantumConfig(k=16))


def booking(name: str, flight: int) -> str:
    return (
        f"-Available({flight}, ?s), +Bookings('{name}', {flight}, ?s)"
        f" :-1 Available({flight}, ?s)"
    )


def test_session_over_quota_gets_typed_error():
    async def scenario():
        qdb = make_qdb()
        config = ServerConfig(session_quota=2)
        async with QuantumServer(qdb, config) as server:
            session = server.session(client="flooder")
            # Schedule three submissions before the writer runs once: the
            # third exceeds the quota of two and must fail fast with the
            # typed error instead of queueing.
            first = asyncio.ensure_future(session.commit(booking("a", 100)))
            second = asyncio.ensure_future(session.commit(booking("b", 100)))
            third = asyncio.ensure_future(session.commit(booking("c", 100)))
            results = await asyncio.gather(first, second, third, return_exceptions=True)
            committed = [r for r in results if not isinstance(r, Exception)]
            refused = [r for r in results if isinstance(r, SessionBackpressure)]
            assert len(committed) == 2
            assert len(refused) == 1
            assert server.statistics.backpressure_rejections == 1
            assert session.statistics.backpressure == 1
            # The refused submission never entered the system.
            assert server.statistics.commits == 2
            await session.close()

    asyncio.run(scenario())


def test_other_sessions_unaffected_by_backpressured_peer():
    async def scenario():
        qdb = make_qdb()
        config = ServerConfig(session_quota=1)
        async with QuantumServer(qdb, config) as server:
            flooder = server.session(client="flooder")
            polite = server.session(client="polite")
            flood = [
                asyncio.ensure_future(flooder.commit(booking(f"f{i}", 100)))
                for i in range(4)
            ]
            polite_result = asyncio.ensure_future(polite.commit(booking("p", 101)))
            results = await asyncio.gather(*flood, return_exceptions=True)
            refused = [r for r in results if isinstance(r, SessionBackpressure)]
            assert refused, "the flooder should have been backpressured"
            # The polite session's commit went through untouched.
            assert (await polite_result).committed
            assert polite.statistics.backpressure == 0
            await flooder.close()
            await polite.close()

    asyncio.run(scenario())


def test_quota_slots_recycle_after_completion():
    async def scenario():
        qdb = make_qdb()
        config = ServerConfig(session_quota=1)
        async with QuantumServer(qdb, config) as server:
            async with server.session(client="steady") as session:
                # Sequential awaits never trip the quota: each slot is
                # released when its item resolves.
                for index in range(5):
                    result = await session.commit(booking(f"s{index}", 100))
                    assert result.committed
                assert session.statistics.backpressure == 0
                assert server.statistics.backpressure_rejections == 0

    asyncio.run(scenario())


def test_zero_quota_rejected_at_configuration_time():
    from repro.errors import QuantumError

    with pytest.raises(QuantumError):
        ServerConfig(session_quota=0)
    with pytest.raises(QuantumError):
        ServerConfig(session_quota=-1)


def test_no_quota_means_no_typed_errors():
    async def scenario():
        qdb = make_qdb()
        async with QuantumServer(qdb, ServerConfig()) as server:
            async with server.session(client="burst") as session:
                tasks = [
                    asyncio.ensure_future(session.commit(booking(f"b{i}", 100)))
                    for i in range(8)
                ]
                results = await asyncio.gather(*tasks)
                assert all(r.committed for r in results)
                assert server.statistics.backpressure_rejections == 0

    asyncio.run(scenario())
