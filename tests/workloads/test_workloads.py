"""Tests for the flight database, arrival orders and workload generators."""

from __future__ import annotations

import pytest

from repro.workloads.arrival_orders import (
    ArrivalOrder,
    expected_max_pending,
    measured_max_pending,
    order_arrivals,
)
from repro.workloads.calendar import (
    CalendarSpec,
    build_calendar_database,
    calendar_csp,
    make_meeting_request,
)
from repro.workloads.entangled_workload import generate_workload, make_pairs
from repro.workloads.flights import (
    FlightDatabaseSpec,
    booked_adjacent_pairs,
    build_flight_database,
)
from repro.workloads.mixed import OperationKind, generate_mixed_workload


class TestFlightDatabase:
    def test_paper_sizing_derivations(self):
        spec = FlightDatabaseSpec(num_flights=1, rows_per_flight=34)
        assert spec.seats_per_flight == 102
        assert spec.max_coordinating_users_per_flight == 68
        ten_rows = FlightDatabaseSpec(num_flights=1, rows_per_flight=10)
        assert ten_rows.max_coordinating_users_per_flight == 20  # the paper's example

    def test_adjacency_pairs_per_row(self):
        spec = FlightDatabaseSpec(num_flights=1, rows_per_flight=2)
        pairs = list(spec.adjacency_pairs())
        # "Each row has four possible adjacent pairs."
        assert len(pairs) == 8
        assert ("1A", "1B") in pairs and ("1B", "1A") in pairs
        assert ("1A", "1C") not in pairs

    def test_populated_tables(self):
        spec = FlightDatabaseSpec(num_flights=2, rows_per_flight=3, first_flight_number=50)
        database = build_flight_database(spec)
        assert len(database.table("Available")) == 2 * 9
        assert len(database.table("Adjacent")) == 2 * 3 * 4
        assert len(database.table("Bookings")) == 0
        assert spec.flight_numbers() == (50, 51)

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            FlightDatabaseSpec(num_flights=0)
        with pytest.raises(ValueError):
            FlightDatabaseSpec(seats_per_row=5)

    def test_booked_adjacent_pairs(self):
        spec = FlightDatabaseSpec(num_flights=1, rows_per_flight=1)
        database = build_flight_database(spec)
        flight = spec.flight_numbers()[0]
        database.insert("Bookings", ("Mickey", flight, "1A"))
        database.insert("Bookings", ("Goofy", flight, "1B"))
        database.insert("Bookings", ("Pluto", flight, "1C"))
        pairs = booked_adjacent_pairs(database)
        assert frozenset({"Mickey", "Goofy"}) in pairs
        assert frozenset({"Goofy", "Pluto"}) in pairs
        assert frozenset({"Mickey", "Pluto"}) not in pairs


class TestArrivalOrders:
    def test_all_orders_are_permutations(self):
        for order in ArrivalOrder:
            arrivals = order_arrivals(5, order)
            assert sorted(arrivals) == list(range(10))

    def test_alternate_partners_adjacent(self):
        arrivals = order_arrivals(4, ArrivalOrder.ALTERNATE)
        assert arrivals == [0, 1, 2, 3, 4, 5, 6, 7]

    def test_in_order_partner_lag(self):
        arrivals = order_arrivals(3, ArrivalOrder.IN_ORDER)
        assert arrivals == [0, 2, 4, 1, 3, 5]

    def test_reverse_order(self):
        arrivals = order_arrivals(3, ArrivalOrder.REVERSE_ORDER)
        assert arrivals == [0, 2, 4, 5, 3, 1]

    def test_expected_bounds_match_table1(self):
        assert expected_max_pending(51, ArrivalOrder.ALTERNATE) == 1
        assert expected_max_pending(51, ArrivalOrder.RANDOM) == 51
        assert expected_max_pending(51, ArrivalOrder.IN_ORDER) == 51
        assert expected_max_pending(51, ArrivalOrder.REVERSE_ORDER) == 51

    def test_measured_max_pending(self):
        assert measured_max_pending(order_arrivals(6, ArrivalOrder.ALTERNATE)) == 1
        assert measured_max_pending(order_arrivals(6, ArrivalOrder.IN_ORDER)) == 6
        assert measured_max_pending(order_arrivals(6, ArrivalOrder.REVERSE_ORDER)) == 6
        random_max = measured_max_pending(order_arrivals(6, ArrivalOrder.RANDOM))
        assert 1 <= random_max <= 6


class TestEntangledWorkload:
    def test_pairs_fill_flights(self):
        spec = FlightDatabaseSpec(num_flights=2, rows_per_flight=2)
        pairs = make_pairs(spec)
        assert len(pairs) == 2 * 3  # 6 seats per flight → 3 pairs per flight
        assert {p.flight for p in pairs} == set(spec.flight_numbers())

    def test_workload_contents(self):
        spec = FlightDatabaseSpec(num_flights=1, rows_per_flight=2)
        workload = generate_workload(spec, ArrivalOrder.ALTERNATE)
        assert len(workload) == 6
        assert workload.max_possible_coordinations == 4  # 2 rows → 2 users each
        clients = [t.client for t in workload]
        partners = [t.partner for t in workload]
        assert clients[0] == partners[1] and clients[1] == partners[0]

    def test_flight_pinning_optional(self):
        spec = FlightDatabaseSpec(num_flights=1, rows_per_flight=2)
        pinned = generate_workload(spec, ArrivalOrder.RANDOM).transactions[0]
        flexible = generate_workload(spec, ArrivalOrder.RANDOM, pin_flight=False).transactions[0]
        assert pinned.hard_body[0].is_ground() is False  # seat still a variable
        assert pinned.hard_body[0].terms[0].value == spec.flight_numbers()[0]
        assert not flexible.hard_body[0].constants()

    def test_random_order_deterministic_per_seed(self):
        spec = FlightDatabaseSpec(num_flights=1, rows_per_flight=3)
        first = [t.client for t in generate_workload(spec, ArrivalOrder.RANDOM, seed=5)]
        second = [t.client for t in generate_workload(spec, ArrivalOrder.RANDOM, seed=5)]
        assert first == second


class TestMixedWorkload:
    def test_read_fraction(self):
        spec = FlightDatabaseSpec(num_flights=1, rows_per_flight=4)
        workload = generate_mixed_workload(spec, 50.0)
        assert workload.resource_count == 12
        assert abs(workload.read_count - workload.resource_count) <= 1

    def test_zero_percent_reads(self):
        spec = FlightDatabaseSpec(num_flights=1, rows_per_flight=4)
        workload = generate_mixed_workload(spec, 0.0)
        assert workload.read_count == 0

    def test_reads_target_earlier_clients(self):
        spec = FlightDatabaseSpec(num_flights=1, rows_per_flight=4)
        workload = generate_mixed_workload(spec, 40.0, seed=3)
        seen: set[str] = set()
        for operation in workload:
            if operation.kind is OperationKind.RESOURCE:
                assert operation.transaction is not None
                seen.add(operation.transaction.client)
            else:
                assert operation.read_client in seen

    def test_fixed_total_operations(self):
        spec = FlightDatabaseSpec(num_flights=2, rows_per_flight=4)
        workload = generate_mixed_workload(spec, 25.0, total_operations=32)
        assert len(workload) == 32
        assert workload.read_count == 8

    def test_invalid_percentage(self):
        spec = FlightDatabaseSpec(num_flights=1, rows_per_flight=4)
        with pytest.raises(ValueError):
            generate_mixed_workload(spec, 100.0)


class TestCalendarWorkload:
    def test_database_population(self):
        spec = CalendarSpec(people=("A", "B"), days=2, slots_per_day=2)
        database = build_calendar_database(spec, busy=[("A", 1, 1)])
        assert len(database.table("FreeSlot")) == 2 * 4 - 1

    def test_meeting_request_shape(self):
        request = make_meeting_request("offsite", "Mickey", "Donald", preferred_day=2)
        assert len(request.hard_body) == 2
        assert len(request.optional_body) == 1
        assert len(request.updates) == 4

    def test_csp_matches_free_slots(self):
        spec = CalendarSpec(people=("A", "B"), days=1, slots_per_day=3)
        database = build_calendar_database(spec, busy=[("A", 1, 2)])
        problem = calendar_csp(database, [("m1", "A", "B")])
        assert set(problem.domains["m1"]) == {(1, 1), (1, 3)}
