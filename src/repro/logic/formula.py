"""Formula AST for composed transaction bodies.

Theorem 3.5 composes the bodies of pending resource transactions into a
single formula built from relational atoms, equality constraints (coming
from unification predicates), conjunction, disjunction and negation::

    B(M, 1, s1) ∧ {A(f2, s2) ∨ {(f2 = 1) ∧ (s1 = s2)}} ∧ A(2, s3) ∧ ¬{(f2 = 2) ∧ (s3 = s2)}

This module defines that AST along with:

* ``free_variables`` / ``atoms`` introspection,
* application of substitutions,
* evaluation under a ground valuation and a fact oracle (used to verify
  candidate groundings), and
* light simplification (constant folding of TRUE/FALSE, flattening).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.errors import FormulaError
from repro.logic.atoms import Atom
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Term, Variable, as_term

#: A fact oracle answers "is the ground atom relation(values...) true?".
FactOracle = Callable[[str, tuple[Any, ...]], bool]


class Formula:
    """Base class of the formula AST."""

    # -- introspection ------------------------------------------------------

    def free_variables(self) -> frozenset[Variable]:
        """Variables occurring anywhere in the formula."""
        raise NotImplementedError

    def atoms(self) -> tuple[Atom, ...]:
        """All relational atoms in the formula, positives and negatives."""
        raise NotImplementedError

    def substitute(self, theta: Substitution) -> "Formula":
        """Apply a substitution to every term in the formula."""
        raise NotImplementedError

    def evaluate(
        self, valuation: Mapping[str, Any], oracle: FactOracle
    ) -> bool:
        """Evaluate under a ground valuation and a fact oracle.

        Args:
            valuation: variable-name → value mapping; must cover every free
                variable.
            oracle: callable deciding membership of ground atoms.

        Raises:
            FormulaError: if a free variable is missing from the valuation.
        """
        raise NotImplementedError

    def simplify(self) -> "Formula":
        """Return an equivalent, possibly smaller formula."""
        return self

    # -- combinators --------------------------------------------------------

    def __and__(self, other: "Formula") -> "Formula":
        return conjunction([self, other])

    def __or__(self, other: "Formula") -> "Formula":
        return disjunction([self, other])

    def __invert__(self) -> "Formula":
        return Negation(self)


@dataclass(frozen=True)
class _Truth(Formula):
    """The constant TRUE or FALSE."""

    value: bool

    def free_variables(self) -> frozenset[Variable]:
        return frozenset()

    def atoms(self) -> tuple[Atom, ...]:
        return ()

    def substitute(self, theta: Substitution) -> Formula:
        return self

    def evaluate(self, valuation: Mapping[str, Any], oracle: FactOracle) -> bool:
        return self.value

    def __repr__(self) -> str:
        return "TRUE" if self.value else "FALSE"


#: The trivially true formula (e.g. the unification predicate of two equal
#: ground atoms).
TRUE = _Truth(True)
#: The trivially false formula (e.g. the unification predicate of atoms that
#: do not unify).
FALSE = _Truth(False)


def _resolve(term: Term, valuation: Mapping[str, Any]) -> Any:
    """Resolve a term to a concrete value under a valuation."""
    if isinstance(term, Constant):
        return term.value
    if term.name not in valuation:
        raise FormulaError(f"valuation does not bind variable {term.name!r}")
    return valuation[term.name]


@dataclass(frozen=True)
class AtomFormula(Formula):
    """A relational atom used as a formula (membership in the database)."""

    atom: Atom

    def free_variables(self) -> frozenset[Variable]:
        return self.atom.variables()

    def atoms(self) -> tuple[Atom, ...]:
        return (self.atom,)

    def substitute(self, theta: Substitution) -> Formula:
        return AtomFormula(theta.apply_atom(self.atom))

    def evaluate(self, valuation: Mapping[str, Any], oracle: FactOracle) -> bool:
        values = tuple(_resolve(t, valuation) for t in self.atom.terms)
        return oracle(self.atom.relation, values)

    def __repr__(self) -> str:
        return repr(self.atom)


@dataclass(frozen=True)
class Equality(Formula):
    """An equality constraint between two terms (from unification predicates)."""

    left: Term
    right: Term

    def __post_init__(self) -> None:
        object.__setattr__(self, "left", as_term(self.left))
        object.__setattr__(self, "right", as_term(self.right))

    def free_variables(self) -> frozenset[Variable]:
        result = set()
        for term in (self.left, self.right):
            if isinstance(term, Variable):
                result.add(term)
        return frozenset(result)

    def atoms(self) -> tuple[Atom, ...]:
        return ()

    def substitute(self, theta: Substitution) -> Formula:
        return Equality(theta.apply_term(self.left), theta.apply_term(self.right))

    def evaluate(self, valuation: Mapping[str, Any], oracle: FactOracle) -> bool:
        return _resolve(self.left, valuation) == _resolve(self.right, valuation)

    def simplify(self) -> Formula:
        if isinstance(self.left, Constant) and isinstance(self.right, Constant):
            return TRUE if self.left.value == self.right.value else FALSE
        if self.left == self.right:
            return TRUE
        return self

    def __repr__(self) -> str:
        return f"({self.left!r} = {self.right!r})"


@dataclass(frozen=True)
class Conjunction(Formula):
    """Logical AND of sub-formulas (TRUE when empty)."""

    parts: tuple[Formula, ...]

    def free_variables(self) -> frozenset[Variable]:
        result: frozenset[Variable] = frozenset()
        for part in self.parts:
            result |= part.free_variables()
        return result

    def atoms(self) -> tuple[Atom, ...]:
        collected: list[Atom] = []
        for part in self.parts:
            collected.extend(part.atoms())
        return tuple(collected)

    def substitute(self, theta: Substitution) -> Formula:
        return Conjunction(tuple(part.substitute(theta) for part in self.parts))

    def evaluate(self, valuation: Mapping[str, Any], oracle: FactOracle) -> bool:
        return all(part.evaluate(valuation, oracle) for part in self.parts)

    def simplify(self) -> Formula:
        flattened: list[Formula] = []
        for part in self.parts:
            simplified = part.simplify()
            if simplified is FALSE:
                return FALSE
            if simplified is TRUE:
                continue
            if isinstance(simplified, Conjunction):
                flattened.extend(simplified.parts)
            else:
                flattened.append(simplified)
        if not flattened:
            return TRUE
        if len(flattened) == 1:
            return flattened[0]
        return Conjunction(tuple(flattened))

    def __repr__(self) -> str:
        return "(" + " ∧ ".join(repr(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class Disjunction(Formula):
    """Logical OR of sub-formulas (FALSE when empty)."""

    parts: tuple[Formula, ...]

    def free_variables(self) -> frozenset[Variable]:
        result: frozenset[Variable] = frozenset()
        for part in self.parts:
            result |= part.free_variables()
        return result

    def atoms(self) -> tuple[Atom, ...]:
        collected: list[Atom] = []
        for part in self.parts:
            collected.extend(part.atoms())
        return tuple(collected)

    def substitute(self, theta: Substitution) -> Formula:
        return Disjunction(tuple(part.substitute(theta) for part in self.parts))

    def evaluate(self, valuation: Mapping[str, Any], oracle: FactOracle) -> bool:
        return any(part.evaluate(valuation, oracle) for part in self.parts)

    def simplify(self) -> Formula:
        flattened: list[Formula] = []
        for part in self.parts:
            simplified = part.simplify()
            if simplified is TRUE:
                return TRUE
            if simplified is FALSE:
                continue
            if isinstance(simplified, Disjunction):
                flattened.extend(simplified.parts)
            else:
                flattened.append(simplified)
        if not flattened:
            return FALSE
        if len(flattened) == 1:
            return flattened[0]
        return Disjunction(tuple(flattened))

    def __repr__(self) -> str:
        return "(" + " ∨ ".join(repr(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class Negation(Formula):
    """Logical NOT of a sub-formula."""

    inner: Formula

    def free_variables(self) -> frozenset[Variable]:
        return self.inner.free_variables()

    def atoms(self) -> tuple[Atom, ...]:
        return self.inner.atoms()

    def substitute(self, theta: Substitution) -> Formula:
        return Negation(self.inner.substitute(theta))

    def evaluate(self, valuation: Mapping[str, Any], oracle: FactOracle) -> bool:
        return not self.inner.evaluate(valuation, oracle)

    def simplify(self) -> Formula:
        simplified = self.inner.simplify()
        if simplified is TRUE:
            return FALSE
        if simplified is FALSE:
            return TRUE
        if isinstance(simplified, Negation):
            return simplified.inner
        return Negation(simplified)

    def __repr__(self) -> str:
        return f"¬{self.inner!r}"


# ---------------------------------------------------------------------------
# Constructors
# ---------------------------------------------------------------------------


def conjunction(parts: Sequence[Formula] | Iterable[Formula]) -> Formula:
    """Build a (flattened, simplified) conjunction."""
    return Conjunction(tuple(parts)).simplify()


def disjunction(parts: Sequence[Formula] | Iterable[Formula]) -> Formula:
    """Build a (flattened, simplified) disjunction."""
    return Disjunction(tuple(parts)).simplify()


def atoms_to_formula(atoms: Iterable[Atom]) -> Formula:
    """Conjoin a collection of body atoms into a formula."""
    return conjunction([AtomFormula(a.as_body()) for a in atoms])
