"""Arrival orders of entangled transactions (Table 1).

The overhead of the quantum database depends on how long transactions stay
pending, which is governed by when each user's coordination partner shows
up.  Table 1 of the paper defines four arrival orders over ``N``
transactions forming ``N/2`` coordination pairs:

========  ==========================================  =================
Order     Characteristic                              Max pending xacts
========  ==========================================  =================
Alternate T_i entangles with T_{i+1}                  1
Random    T_i entangles with T_j for some i, j < N    ⌈N/2⌉
In Order  T_i entangles with T_{i+N/2}                ⌈N/2⌉
Reverse   T_i entangles with T_{N−i}                  ⌈N/2⌉
========  ==========================================  =================

:func:`order_arrivals` produces the arrival sequence of user indices for a
given order; :func:`expected_max_pending` returns the analytic bound of the
table (which the Table 1 experiment compares against the measured maximum).
"""

from __future__ import annotations

import enum
import math
import random
from typing import Sequence


class ArrivalOrder(enum.Enum):
    """The four arrival orders of Table 1."""

    ALTERNATE = "Alternate"
    RANDOM = "Random"
    IN_ORDER = "In Order"
    REVERSE_ORDER = "Reverse Order"


def pair_index(user_index: int, num_users: int, order: ArrivalOrder) -> int:
    """Index of the partner of ``user_index`` under the pairing of ``order``.

    All four orders use the same *pairing* for Alternate-style workload
    construction (consecutive users are partners); what differs is the
    arrival sequence.  This helper exists mostly for documentation and
    tests: partner assignment happens in
    :mod:`repro.workloads.entangled_workload`.
    """
    if num_users % 2 != 0:
        raise ValueError("entangled workloads need an even number of users")
    del order  # pairing is by consecutive pairs in every workload we build
    return user_index + 1 if user_index % 2 == 0 else user_index - 1


def order_arrivals(
    num_pairs: int,
    order: ArrivalOrder,
    *,
    rng: random.Random | None = None,
) -> list[int]:
    """Arrival sequence of user indices (0-based) for ``num_pairs`` pairs.

    Users ``2i`` and ``2i+1`` are coordination partners.  The returned list
    is a permutation of ``range(2 * num_pairs)`` realising the requested
    arrival order:

    * ``ALTERNATE`` — each user is immediately followed by their partner;
    * ``RANDOM`` — a uniformly random permutation (the paper's "most
      realistic" order);
    * ``IN_ORDER`` — all first partners, then all second partners in the
      same order (partner of the i-th arrival arrives i + N/2-th);
    * ``REVERSE_ORDER`` — all first partners, then the second partners in
      reverse (the first user's partner arrives last).
    """
    if num_pairs < 1:
        raise ValueError("num_pairs must be positive")
    firsts = [2 * i for i in range(num_pairs)]
    seconds = [2 * i + 1 for i in range(num_pairs)]
    if order is ArrivalOrder.ALTERNATE:
        sequence: list[int] = []
        for first, second in zip(firsts, seconds):
            sequence.extend((first, second))
        return sequence
    if order is ArrivalOrder.RANDOM:
        rng = rng or random.Random(0)
        sequence = firsts + seconds
        rng.shuffle(sequence)
        return sequence
    if order is ArrivalOrder.IN_ORDER:
        return firsts + seconds
    if order is ArrivalOrder.REVERSE_ORDER:
        return firsts + list(reversed(seconds))
    raise ValueError(f"unknown arrival order {order!r}")


def expected_max_pending(num_pairs: int, order: ArrivalOrder) -> int:
    """Analytic bound on pending transactions from Table 1.

    Assumes (as the paper does) that a transaction remains pending exactly
    until its partner arrives, at which point both are grounded.
    """
    total = 2 * num_pairs
    if order is ArrivalOrder.ALTERNATE:
        return 1
    return math.ceil(total / 2)


def measured_max_pending(arrivals: Sequence[int]) -> int:
    """Maximum simultaneously pending transactions for an arrival sequence.

    Simulates the ground-on-partner-arrival policy: a user's transaction
    stays pending until their partner (the other member of the consecutive
    pair) has arrived.
    """
    pending: set[int] = set()
    maximum = 0
    arrived: set[int] = set()
    for user in arrivals:
        arrived.add(user)
        partner = user + 1 if user % 2 == 0 else user - 1
        if partner in pending:
            pending.discard(partner)
        else:
            pending.add(user)
        maximum = max(maximum, len(pending))
    return maximum
