"""End-to-end tests for the QuantumDatabase facade."""

from __future__ import annotations

import pytest

from repro.core.quantum_database import QuantumConfig, QuantumDatabase
from repro.core.reads import ReadMode, ReadRequest
from repro.core.serializability import SerializabilityMode
from repro.errors import WriteRejected
from repro.logic.terms import Variable
from repro import make_adjacent_seat_request
from tests.conftest import make_tiny_flight_db

ANY_SEAT = "-Available(123, ?s), +Bookings('{name}', 123, ?s) :-1 Available(123, ?s)"
SPECIFIC_SEAT = (
    "-Available(123, '{seat}'), +Bookings('{name}', 123, '{seat}') "
    ":-1 Available(123, '{seat}')"
)


def qdb_with_seats(seats: int = 3) -> QuantumDatabase:
    return QuantumDatabase(make_tiny_flight_db(seats=seats))


class TestCommit:
    def test_commit_defers_assignment(self):
        qdb = qdb_with_seats()
        result = qdb.execute(ANY_SEAT.format(name="Mickey"))
        assert result.committed and result.pending
        assert qdb.pending_count == 1
        # Nothing has touched the extensional store yet.
        assert len(qdb.table("Bookings")) == 0
        assert len(qdb.table("Available")) == 3

    def test_rejected_when_no_grounding_exists(self):
        qdb = qdb_with_seats(seats=1)
        assert qdb.execute(ANY_SEAT.format(name="Mickey")).committed
        assert qdb.execute(ANY_SEAT.format(name="Goofy")).committed is False
        assert qdb.statistics.rejected == 1

    def test_commit_capacity_equals_seats(self):
        qdb = qdb_with_seats(seats=3)
        outcomes = [
            qdb.execute(ANY_SEAT.format(name=f"user{i}")).committed for i in range(4)
        ]
        assert outcomes == [True, True, True, False]

    def test_hard_conflict_on_specific_seat(self):
        qdb = qdb_with_seats()
        assert qdb.execute(SPECIFIC_SEAT.format(name="Mickey", seat="1A")).committed
        assert not qdb.execute(SPECIFIC_SEAT.format(name="Pluto", seat="1A")).committed

    def test_optional_preference_never_blocks_commit(self):
        qdb = qdb_with_seats(seats=2)
        # Mickey hopes to sit next to Goofy (who never shows up), Pluto takes
        # a specific seat: both commit because the preference is optional.
        assert qdb.execute(make_adjacent_seat_request("Mickey", "Goofy", flight=123)).committed
        assert qdb.execute(SPECIFIC_SEAT.format(name="Pluto", seat="1A")).committed


class TestGroundingAndReads:
    def test_check_in_fixes_assignment(self):
        qdb = qdb_with_seats()
        result = qdb.execute(ANY_SEAT.format(name="Mickey"))
        record = qdb.check_in(result.transaction_id)
        assert record is not None
        assert record.valuation["s"] in {"1A", "1B", "1C"}
        assert qdb.pending_count == 0
        assert len(qdb.table("Bookings")) == 1

    def test_check_in_unknown_id(self):
        assert qdb_with_seats().check_in(999_999) is None

    def test_read_collapses_only_unifying_transactions(self):
        qdb = qdb_with_seats()
        mickey = qdb.execute(ANY_SEAT.format(name="Mickey"))
        goofy = qdb.execute(ANY_SEAT.format(name="Goofy"))
        rows = qdb.read("Bookings", ["Mickey", None, None])
        assert len(rows) == 1
        # Mickey's transaction was grounded by the read; Goofy's update atom
        # +Bookings('Goofy', ...) does not unify with the Mickey-constant read.
        assert qdb.assignment_of(mickey.transaction_id) is not None
        assert qdb.state.is_pending(goofy.transaction_id)

    def test_read_repeatability_after_collapse(self):
        qdb = qdb_with_seats()
        qdb.execute(ANY_SEAT.format(name="Mickey"))
        first = qdb.read("Bookings", ["Mickey", None, None])
        second = qdb.read("Bookings", ["Mickey", None, None])
        assert first == second

    def test_general_read_grounds_everything(self):
        qdb = qdb_with_seats()
        qdb.execute(ANY_SEAT.format(name="Mickey"))
        qdb.execute(ANY_SEAT.format(name="Goofy"))
        rows = qdb.read(
            ReadRequest.single("Bookings", [Variable("p"), Variable("f"), Variable("s")])
        )
        assert len(rows) == 2
        assert qdb.pending_count == 0

    def test_peek_does_not_collapse(self):
        qdb = qdb_with_seats()
        qdb.execute(ANY_SEAT.format(name="Mickey"))
        rows = qdb.read("Bookings", ["Mickey", None, None], mode=ReadMode.PEEK)
        assert len(rows) == 1
        assert qdb.pending_count == 1
        assert len(qdb.table("Bookings")) == 0

    def test_expose_all_reports_possible_worlds(self):
        qdb = qdb_with_seats(seats=2)
        qdb.execute(ANY_SEAT.format(name="Mickey"))
        rows = qdb.read(
            "Bookings", ["Mickey", None, None], mode=ReadMode.EXPOSE_ALL
        )
        seats = {row["_2"] for row in rows}
        assert seats == {"1A", "1B"}
        assert all(row["_worlds"] == 1 for row in rows)
        assert qdb.pending_count == 1

    def test_ground_all(self):
        qdb = qdb_with_seats()
        for name in ("Mickey", "Goofy", "Minnie"):
            qdb.execute(ANY_SEAT.format(name=name))
        grounded = qdb.ground_all()
        assert len(grounded) == 3
        seats = {g.valuation["s"] for g in grounded}
        assert seats == {"1A", "1B", "1C"}


class TestWrites:
    def test_unrelated_write_accepted(self):
        qdb = qdb_with_seats()
        qdb.execute(ANY_SEAT.format(name="Mickey"))
        qdb.insert("Bookings", ("Walkup", 999, "1A"))
        assert qdb.table("Bookings").get((999, "1A")) is not None

    def test_write_that_would_strand_pending_rejected(self):
        qdb = qdb_with_seats(seats=1)
        qdb.execute(ANY_SEAT.format(name="Mickey"))
        with pytest.raises(WriteRejected):
            qdb.delete("Available", (123, "1A"))
        # The write was rolled back.
        assert qdb.table("Available").get((123, "1A")) is not None

    def test_write_that_leaves_an_alternative_accepted(self):
        qdb = qdb_with_seats(seats=2)
        qdb.execute(ANY_SEAT.format(name="Mickey"))
        qdb.delete("Available", (123, "1A"))
        record = qdb.ground_all()[0]
        assert record.valuation["s"] == "1B"

    def test_rejected_write_counts(self):
        qdb = qdb_with_seats(seats=1)
        qdb.execute(ANY_SEAT.format(name="Mickey"))
        with pytest.raises(WriteRejected):
            qdb.delete("Available", (123, "1A"))
        assert qdb.statistics.writes_rejected == 1


class TestEntanglementFlow:
    def test_pair_grounded_on_partner_arrival(self):
        qdb = qdb_with_seats()
        first = qdb.execute(make_adjacent_seat_request("Mickey", "Goofy", flight=123))
        assert first.pending
        second = qdb.execute(make_adjacent_seat_request("Goofy", "Mickey", flight=123))
        assert len(second.grounded) == 2
        assert qdb.pending_count == 0
        report = qdb.coordination_report()
        assert report["coordinated"] == 2.0

    def test_partner_arrival_grounding_can_be_disabled(self):
        qdb = QuantumDatabase(
            make_tiny_flight_db(), QuantumConfig(ground_on_partner_arrival=False)
        )
        qdb.execute(make_adjacent_seat_request("Mickey", "Goofy", flight=123))
        result = qdb.execute(make_adjacent_seat_request("Goofy", "Mickey", flight=123))
        assert result.grounded == ()
        assert qdb.pending_count == 2


class TestStrictSerializability:
    def test_strict_mode_grounds_prefix(self):
        qdb = QuantumDatabase(
            make_tiny_flight_db(),
            QuantumConfig(serializability=SerializabilityMode.STRICT),
        )
        first = qdb.execute(ANY_SEAT.format(name="Mickey"))
        second = qdb.execute(ANY_SEAT.format(name="Goofy"))
        qdb.ground([second.transaction_id])
        # Under strict (arrival-order) serializability, grounding Goofy
        # forces Mickey to be grounded first.
        assert not qdb.state.is_pending(first.transaction_id)
        assert qdb.pending_count == 0

    def test_semantic_mode_grounds_only_target(self):
        qdb = QuantumDatabase(
            make_tiny_flight_db(),
            QuantumConfig(serializability=SerializabilityMode.SEMANTIC),
        )
        first = qdb.execute(ANY_SEAT.format(name="Mickey"))
        second = qdb.execute(ANY_SEAT.format(name="Goofy"))
        qdb.ground([second.transaction_id])
        assert qdb.state.is_pending(first.transaction_id)
        assert qdb.statistics.semantic_reorders == 1
