"""The segmented write-ahead log: the log-structured durability engine.

:class:`SegmentedWriteAheadLog` is a drop-in
:class:`~repro.relational.wal.WriteAheadLog`: transactions, recovery and
the server stack talk to it through the same interface (``append``,
``records``, ``flush``, ``checkpoint``), so the switch between legacy and
segmented durability is one :class:`~repro.storage.config.DurabilityConfig`
knob.  What changes underneath:

* **Segments, not one file.**  Records are CRC-framed into an append-only
  tail segment; when the tail reaches ``segment_max_bytes`` /
  ``segment_max_records`` it is sealed and a fresh tail opened.  A
  manifest (atomic rename updates) records the chain.

* **Checkpoint lineage, not a monolithic fold.**  A periodic
  ``CHECKPOINT_BASE`` carries a full snapshot; between bases,
  ``CHECKPOINT_DELTA`` records carry only the *net* row changes since the
  previous checkpoint, tracked incrementally as transactions commit — so
  the checkpoint pause is proportional to churn, not store size (see
  :meth:`~repro.relational.database.Database.checkpoint`).

* **Compaction, not truncation.**  Sealed segments full of records
  superseded by the checkpoint lineage are rewritten (or deleted) by the
  background compactor without ever blocking the writer; the manifest
  swap makes each rewrite atomic.

In-memory, ``_records`` always equals *checkpoint lineage + live tail*,
which is exactly the replay order
:func:`repro.relational.recovery.replay_into` expects — in-process
recovery (`recover_database`) works on a segmented log unchanged.
"""

from __future__ import annotations

import os
import threading
import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.errors import DurabilityError, RecoveryError
from repro.relational.wal import (
    CHECKPOINT_TYPES,
    SNAPSHOT_CHECKPOINT_TYPES,
    LogRecord,
    LogRecordType,
    WalSink,
    WriteAheadLog,
)
from repro.storage.config import DurabilityConfig
from repro.storage.manifest import MANIFEST_TMP_NAME, Manifest
from repro.storage.segment import (
    SEGMENT_SUFFIX,
    LogSegment,
    SegmentWriter,
    encode_frame,
    scan_frames,
    segment_file_name,
)


@dataclass
class DurabilityStatistics:
    """Counters of the segmented engine (``durability.*`` in reports).

    Attributes:
        segments_sealed: tail segments sealed since open.
        compactions: sealed-segment rewrites/deletions performed.
        bytes_reclaimed: on-disk bytes dropped by compaction.
        flushes: group-commit flushes of the tail segment.
        fsyncs: ``os.fsync`` calls on the tail (``fsync=True`` only).
        checkpoints_base: full-snapshot checkpoints written.
        checkpoints_delta: delta checkpoints written.
        checkpoint_pause_ms: longest observed checkpoint pause (any kind).
        base_pause_ms: longest full-snapshot checkpoint pause.
        delta_pause_ms: longest delta checkpoint pause — the number the
            recovery benchmark gates against the legacy full-snapshot
            pause.
        torn_tail_truncations: torn trailing records truncated at open.
        sync_windows: deferred group fsyncs issued by the window thread
            (``fsync_window_s > 0``); each one covers every commit that
            flushed since the previous sync.
        bases_synthesized: base checkpoints folded off the writer by the
            compactor (``incremental_bases=True``).
        base_synthesis_ms: longest off-writer base fold observed (never a
            writer pause — reported to show the background cost).
        compaction_errors: failed compaction passes (corrupt sealed
            segments, fold failures); see ``last_compaction_error``.
        last_compaction_error: description of the most recent compaction
            failure, or ``None``.
    """

    segments_sealed: int = 0
    compactions: int = 0
    bytes_reclaimed: int = 0
    flushes: int = 0
    fsyncs: int = 0
    checkpoints_base: int = 0
    checkpoints_delta: int = 0
    checkpoint_pause_ms: float = 0.0
    base_pause_ms: float = 0.0
    delta_pause_ms: float = 0.0
    torn_tail_truncations: int = 0
    sync_windows: int = 0
    bases_synthesized: int = 0
    base_synthesis_ms: float = 0.0
    compaction_errors: int = 0
    last_compaction_error: str | None = None


#: Compaction attempts on one segment before it is quarantined.  A sealed
#: segment that keeps failing (CRC damage, undecodable records) would
#: otherwise pin the background compactor in a hot retry loop.
_COMPACTION_ATTEMPT_LIMIT = 3


class _GroupSyncWindow:
    """Coordinates deferred commit fsyncs into timed group syncs.

    Commit flushes ``request()`` a ticket under the writer lock and then
    ``await_ticket()`` it *outside* the lock; a timer thread issues one
    ``os.fsync`` on the tail once ``window_s`` has elapsed since the first
    uncovered request, covering every ticket issued so far.  Paths that
    sync the tail themselves (seals, checkpoints, explicit ``flush()``,
    ``close()``) call ``complete_all()`` — every pending ticket points
    into the tail they just synced, because sealing is itself such a path.
    """

    def __init__(self, engine: "SegmentedWriteAheadLog", window_s: float) -> None:
        self._engine = engine
        self._window_s = window_s
        self._cond = threading.Condition()
        self._requested = 0
        self._completed = 0
        self._window_opened: float | None = None
        self._error: BaseException | None = None
        self._stopped = False
        self._thread = threading.Thread(
            target=self._run,
            name="repro-wal-group-sync",
            daemon=True,
        )
        self._thread.start()

    def request(self) -> int:
        """Register a flush awaiting its covering sync; returns its ticket."""
        with self._cond:
            self._requested += 1
            if self._window_opened is None:
                self._window_opened = time.monotonic()
            self._cond.notify_all()
            return self._requested

    def pending(self) -> bool:
        with self._cond:
            return self._completed < self._requested

    def complete_all(self) -> None:
        """Mark every ticket covered (the caller just synced the tail)."""
        with self._cond:
            self._completed = self._requested
            self._window_opened = None
            self._cond.notify_all()

    def fail(self, exc: BaseException) -> None:
        with self._cond:
            self._error = exc
            self._cond.notify_all()

    def await_ticket(self, ticket: int) -> None:
        """Block until the sync covering ``ticket`` has landed."""
        with self._cond:
            while self._completed < ticket:
                if self._error is not None:
                    raise DurabilityError(
                        "group fsync failed; commits in the window are not "
                        "durable"
                    ) from self._error
                if self._stopped:
                    raise DurabilityError(
                        "segmented engine closed while a commit awaited its "
                        "group fsync"
                    )
                self._cond.wait()

    def stop(self) -> None:
        """Stop the timer thread (idempotent; release any stuck waiter)."""
        with self._cond:
            if self._stopped:
                return
            self._stopped = True
            self._cond.notify_all()
        self._thread.join()

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._stopped and (
                    self._completed >= self._requested or self._error is not None
                ):
                    self._cond.wait()
                if self._stopped:
                    return
                assert self._window_opened is not None
                deadline = self._window_opened + self._window_s
                while not self._stopped:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cond.wait(remaining)
                if self._stopped:
                    return
            self._engine._sync_tail_for_window()


class SegmentedWriteAheadLog(WriteAheadLog):
    """A write-ahead log over sealed segments with a checkpoint lineage.

    Opening an existing directory *is* the recovery scan: the manifest is
    read, sealed segments are verified (CRC damage there is fatal), a
    torn tail record is truncated with a warning, orphan files from
    interrupted compactions are removed, and the in-memory state (records,
    next LSN, dirty set for the next delta checkpoint) is rebuilt.  Use
    :func:`repro.storage.recover` to also replay the records into a fresh
    :class:`~repro.relational.database.Database`.

    Args:
        directory: segment/manifest directory (created if missing).
        config: engine configuration; defaults to a segmented
            :class:`DurabilityConfig` on ``directory``.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        config: DurabilityConfig | None = None,
    ) -> None:
        super().__init__()
        if config is None:
            config = DurabilityConfig(mode="segmented", directory=os.fspath(directory))
        if not config.segmented:
            raise DurabilityError(
                "SegmentedWriteAheadLog needs DurabilityConfig(mode='segmented')"
            )
        self.config = config
        self.directory = os.fspath(directory)
        self.statistics = DurabilityStatistics()
        #: Per-transaction effect buffers: txn id → [(table, values,
        #: is_delete)], folded into the dirty set at COMMIT, dropped at
        #: ABORT.  Guarded by the inherited ``_lock``.
        self._txn_effects: dict[int, list[tuple[str, tuple, bool]]] = {}
        #: Net row changes since the previous checkpoint:
        #: table → {values-tuple: True for "row gone", False for "row new"}.
        self._dirty: dict[str, dict[tuple, bool]] = {}
        self._lineage_length = 0
        self._has_base = False
        self._deltas_since_base = 0
        self._closed = False
        self._compactor = None
        #: Serializes compaction passes (background thread vs. an explicit
        #: ``compact_now()``); the writer never takes it.
        self._compaction_lock = threading.Lock()
        #: Compaction failure bookkeeping: attempts per segment file, and
        #: the quarantine of segments that keep failing.
        self._compaction_attempts: dict[str, int] = {}
        self._compaction_quarantine: set[str] = set()
        #: Off-writer base synthesis (``incremental_bases``): armed by
        #: ``checkpoint_delta`` once the chain reaches ``base_interval``,
        #: executed by the compactor.  ``_synthesis_cutoff`` is the LSN of
        #: the newest delta sealed at arming time — the fold's horizon.
        self._synthesis_due = False
        self._synthesis_cutoff = 0
        #: Group-fsync window (``fsync_window_s > 0``): commit flushes
        #: defer their sync to the window's timer thread and block on a
        #: ticket outside the writer lock; ``_deferred_sync`` carries the
        #: per-thread ``sync_scope()`` state that batches those waits.
        self._sync_window: _GroupSyncWindow | None = None
        self._deferred_sync = threading.local()
        if config.fsync and config.fsync_window_s > 0:
            self._sync_window = _GroupSyncWindow(self, config.fsync_window_s)
        os.makedirs(self.directory, exist_ok=True)
        self._open_or_recover()

    @property
    def _tail_fsync(self) -> bool:
        # With a group window the engine drives tail syncs itself; the
        # writer must not sync on every flush.
        return self.config.fsync and self._sync_window is None

    # -- open / recovery scan ----------------------------------------------

    def _path(self, name: str) -> str:
        return os.path.join(self.directory, name)

    def _open_or_recover(self) -> None:
        tmp = self._path(MANIFEST_TMP_NAME)
        if os.path.exists(tmp):
            # An interrupted manifest update: os.replace never ran, so the
            # old manifest is still authoritative and the tmp is garbage.
            os.remove(tmp)
        manifest = Manifest.load(self.directory)
        if manifest is None:
            # Fresh directory.  Stray segment files can only come from a
            # crash between creating the first segment and the first
            # manifest save — before any record was written.
            for name in self._segment_files_on_disk():
                os.remove(self._path(name))
            self._manifest = Manifest()
            self._create_tail_locked()
            self._manifest.save(self.directory, fsync=self.config.fsync)
            return
        self._manifest = manifest
        all_records: list[LogRecord] = []
        for entry in manifest.segments:
            all_records.extend(self._scan_segment(entry))
        for name in self._segment_files_on_disk() - manifest.segment_names():
            # Orphans: a compactor killed mid-rewrite (new file written,
            # manifest never swapped) or mid-cleanup (swapped, old file
            # not yet deleted).  Either way the manifest never names them.
            os.remove(self._path(name))
        self._install_records(all_records, buffer_open_transactions=False)
        if not manifest.segments or manifest.segments[-1].sealed:
            self._create_tail_locked()
        else:
            tail = manifest.segments[-1]
            self._tail = SegmentWriter(self._path(tail.name), fsync=self._tail_fsync)
            self._tail.records = tail.records
        self._manifest.save(self.directory, fsync=self.config.fsync)

    def _segment_files_on_disk(self) -> set[str]:
        return {
            name
            for name in os.listdir(self.directory)
            if name.endswith(SEGMENT_SUFFIX)
        }

    def _scan_segment(self, entry: LogSegment) -> list[LogRecord]:
        """Read and verify one segment, truncating a torn tail record."""
        path = self._path(entry.name)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            raise RecoveryError(
                f"segment {entry.name!r} is listed in the manifest but "
                "missing on disk"
            ) from None
        scan = scan_frames(data)
        if scan.damage is not None:
            if entry.sealed:
                raise RecoveryError(
                    f"sealed segment {entry.name!r} is corrupt: {scan.damage}"
                )
            # The unsealed tail: damage past the clean prefix is a torn
            # trailing write from the crash — drop it, keep everything
            # before it, and say so.
            with open(path, "r+b") as handle:
                handle.truncate(scan.clean_length)
            warnings.warn(
                f"truncated torn tail record in {entry.name!r}: {scan.damage} "
                f"(kept {scan.clean_length} clean bytes)",
                RuntimeWarning,
                stacklevel=2,
            )
            self.statistics.torn_tail_truncations += 1
        records = [
            LogRecord.from_json(payload.decode("utf-8"))
            for payload in scan.payloads
        ]
        entry.records = len(records)
        entry.size = scan.clean_length
        return records

    def _install_records(
        self, records: list[LogRecord], *, buffer_open_transactions: bool
    ) -> None:
        """Rebuild in-memory state from a full scan (or adopted log).

        Selects the *surviving* checkpoint lineage — the newest snapshot
        checkpoint plus every delta after it up to the newest checkpoint
        of any kind — and keeps only raw records past that point as the
        live tail; everything older is superseded (compaction may or may
        not have dropped it on disk yet).  The dirty set for the next
        delta checkpoint is refolded from the tail's committed records.
        """
        records = sorted(records, key=lambda r: r.lsn)
        checkpoint_idx = None
        for i, record in enumerate(records):
            if record.record_type in CHECKPOINT_TYPES:
                checkpoint_idx = i
        lineage: list[LogRecord] = []
        checkpoint_lsn = 0
        if checkpoint_idx is not None:
            base_idx = None
            for i in range(checkpoint_idx, -1, -1):
                if records[i].record_type in SNAPSHOT_CHECKPOINT_TYPES:
                    base_idx = i
                    break
            if base_idx is None:
                raise RecoveryError(
                    "CHECKPOINT_DELTA without a surviving base snapshot"
                )
            lineage = [records[base_idx]] + [
                r
                for r in records[base_idx + 1 : checkpoint_idx + 1]
                if r.record_type is LogRecordType.CHECKPOINT_DELTA
                # A synthesized base reuses the LSN of the newest delta it
                # folded; until compaction drops that delta's old record,
                # both coexist on disk — the delta is superseded.
                and r.lsn > records[base_idx].lsn
            ]
            checkpoint_lsn = records[checkpoint_idx].lsn
        tail = [
            r
            for r in records
            if r.lsn > checkpoint_lsn and r.record_type not in CHECKPOINT_TYPES
        ]
        self._records = lineage + tail
        self._lineage_length = len(lineage)
        self._next_lsn = (records[-1].lsn if records else 0) + 1
        self._has_base = bool(lineage)
        self._deltas_since_base = max(0, len(lineage) - 1)
        self._dirty = {}
        self._txn_effects = {}
        committed = {
            r.transaction_id
            for r in tail
            if r.record_type is LogRecordType.COMMIT
        }
        finished = committed | {
            r.transaction_id
            for r in tail
            if r.record_type is LogRecordType.ABORT
        }
        for record in tail:
            if record.record_type is LogRecordType.INSERT:
                is_delete = False
            elif record.record_type is LogRecordType.DELETE:
                is_delete = True
            else:
                continue
            assert record.table is not None and record.values is not None
            if record.transaction_id in committed:
                self._fold_effect(record.table, record.values, is_delete)
            elif (
                buffer_open_transactions
                and record.transaction_id not in finished
            ):
                self._txn_effects.setdefault(record.transaction_id, []).append(
                    (record.table, record.values, is_delete)
                )

    def adopt(self, source: WriteAheadLog) -> None:
        """Take over an in-memory log's records (server start-up path).

        The engine must be freshly opened on an empty directory; every
        record of ``source`` is made durable in the segmented format and
        the in-memory state (lineage, tail, dirty set, effect buffers of
        still-open transactions) is rebuilt from it, so the database can
        simply swap ``db.wal`` to this engine and keep going.
        """
        records = source.records()
        with self._lock:
            if self._records or self._next_lsn != 1:
                raise DurabilityError(
                    "can only adopt into a freshly created empty engine; "
                    "this directory already holds records — recover from it "
                    "with repro.storage.recover() instead"
                )
            for record in records:
                self._write_record_locked(record)
            if records:
                self._flush_tail_locked()
            self._install_records(list(records), buffer_open_transactions=True)

    # -- the dirty-set algebra ----------------------------------------------

    def _fold_effect(self, table: str, values: tuple, is_delete: bool) -> None:
        """Fold one committed row effect into the net dirty set.

        Tables enforce keys with set semantics, so within one table a row
        (identified by its full value tuple, exactly how WAL DELETE
        records identify rows) alternates between present and absent:
        an insert cancels a pending delete of the same values (the row is
        back to its checkpointed state) and vice versa.
        """
        bucket = self._dirty.setdefault(table, {})
        prior = bucket.get(values)
        if prior is None:
            bucket[values] = is_delete
        elif prior != is_delete:
            del bucket[values]
            if not bucket:
                del self._dirty[table]
        # prior == is_delete cannot happen for key-enforced tables (the
        # runtime refuses double inserts / deletes of absent rows).

    def _delta_payload(self) -> dict[str, dict[str, list[tuple]]]:
        """The current dirty set as a CHECKPOINT_DELTA payload."""
        payload: dict[str, dict[str, list[tuple]]] = {}
        for table, bucket in self._dirty.items():
            deletes = sorted(
                (values for values, gone in bucket.items() if gone), key=repr
            )
            inserts = sorted(
                (values for values, gone in bucket.items() if not gone), key=repr
            )
            changes: dict[str, list[tuple]] = {}
            if deletes:
                changes["delete"] = deletes
            if inserts:
                changes["insert"] = inserts
            if changes:
                payload[table] = changes
        return payload

    # -- append path ---------------------------------------------------------

    def _write_record_locked(self, record: LogRecord) -> None:
        """Frame ``record`` into the tail, sealing it when thresholds hit."""
        self._tail.append(record.to_json().encode("utf-8"))
        if (
            self._tail.size >= self.config.segment_max_bytes
            or self._tail.records >= self.config.segment_max_records
        ):
            self._seal_tail_locked()

    def append(
        self,
        record_type: LogRecordType,
        transaction_id: int,
        table: str | None = None,
        values: Sequence[Any] | None = None,
        snapshot: Mapping[str, Sequence[Sequence[Any]]] | None = None,
    ) -> LogRecord:
        """Append a record (framed into the tail segment) and return it.

        With a group-fsync window, a COMMIT/ABORT append flushes the tail
        and then blocks — outside the writer lock, so concurrent commits
        stack into the same window — until the deferred sync covering it
        lands; the record is therefore durable by the time the append
        returns, exactly as with per-commit syncs.  Inside a
        :meth:`sync_scope` the wait is batched to the scope exit instead.
        """
        ticket: int | None = None
        with self._lock:
            if self._closed:
                raise DurabilityError(
                    "cannot append to a closed segmented engine"
                )
            record = LogRecord(
                lsn=self._next_lsn,
                record_type=record_type,
                transaction_id=transaction_id,
                table=table,
                values=tuple(values) if values is not None else None,
                snapshot=snapshot,
            )
            self._next_lsn += 1
            self._records.append(record)
            self._write_record_locked(record)
            if record_type is LogRecordType.INSERT:
                assert table is not None and record.values is not None
                self._txn_effects.setdefault(transaction_id, []).append(
                    (table, record.values, False)
                )
            elif record_type is LogRecordType.DELETE:
                assert table is not None and record.values is not None
                self._txn_effects.setdefault(transaction_id, []).append(
                    (table, record.values, True)
                )
            elif record_type is LogRecordType.COMMIT:
                for effect in self._txn_effects.pop(transaction_id, ()):
                    self._fold_effect(*effect)
                ticket = self._flush_tail_locked(defer_sync=True)
            elif record_type is LogRecordType.ABORT:
                self._txn_effects.pop(transaction_id, None)
                ticket = self._flush_tail_locked(defer_sync=True)
        if ticket is not None:
            self._settle_sync_ticket(ticket)
        return record

    def _flush_tail_locked(self, *, defer_sync: bool = False) -> int | None:
        """Flush the tail; returns a sync ticket when the sync is deferred.

        With a group-fsync window, commit flushes (``defer_sync=True``)
        hand their ``os.fsync`` to the window thread and return a ticket
        the caller must await *outside* the writer lock.  Every other
        flush — checkpoints, seals, explicit :meth:`flush`, ``adopt`` —
        syncs eagerly, so manifest pointer advances never reference
        unsynced records.
        """
        self._tail.flush()
        self.statistics.flushes += 1
        window = self._sync_window
        if window is None:
            if self.config.fsync:
                self.statistics.fsyncs += 1
            return None
        if defer_sync:
            return window.request()
        self._tail.sync()
        self.statistics.fsyncs += 1
        window.complete_all()
        return None

    def _settle_sync_ticket(self, ticket: int) -> None:
        """Wait for a commit's covering sync, or defer into the scope."""
        window = self._sync_window
        assert window is not None
        local = self._deferred_sync
        if getattr(local, "depth", 0):
            local.max_ticket = max(getattr(local, "max_ticket", 0), ticket)
            return
        window.await_ticket(ticket)

    def _sync_tail_for_window(self) -> None:
        """Issue one group sync covering every pending ticket (timer thread)."""
        window = self._sync_window
        assert window is not None
        with self._lock:
            if self._closed or not window.pending():
                # close() (or an eager sync path) already covered the
                # outstanding tickets.
                return
            try:
                self._tail.sync()
            except OSError as exc:  # pragma: no cover - disk failure path
                window.fail(exc)
                return
            self.statistics.fsyncs += 1
            self.statistics.sync_windows += 1
            window.complete_all()

    @contextmanager
    def sync_scope(self) -> Iterator[None]:
        """Batch this thread's commit-sync waits into one wait at exit.

        Inside the scope, ``append(COMMIT/ABORT)`` records its sync ticket
        instead of blocking; leaving the scope waits once for the highest
        ticket, so a whole drained batch shares one group fsync (and one
        window of latency) while every commit is still acknowledged only
        after its covering sync.  Reentrant, per-thread; a no-op without a
        group-fsync window.
        """
        if self._sync_window is None:
            yield
            return
        local = self._deferred_sync
        depth = getattr(local, "depth", 0)
        if depth == 0:
            local.max_ticket = 0
        local.depth = depth + 1
        try:
            yield
        finally:
            local.depth = depth
            if depth == 0:
                ticket, local.max_ticket = local.max_ticket, 0
                if ticket:
                    self._sync_window.await_ticket(ticket)

    def flush(self) -> None:
        """Force the tail segment's durability point.

        In windowed mode this syncs immediately and releases every pending
        commit waiter — an explicit flush is a durability point (the
        server calls it at shutdown).
        """
        with self._lock:
            if not self._closed:
                self._flush_tail_locked()

    # -- sealing -------------------------------------------------------------

    def _create_tail_locked(self) -> None:
        index = self._manifest.next_segment_index
        self._manifest.next_segment_index += 1
        entry = LogSegment(index=index, name=segment_file_name(index))
        self._tail = SegmentWriter(self._path(entry.name), fsync=self._tail_fsync)
        self._manifest.segments.append(entry)

    def _seal_tail_locked(self) -> None:
        """Seal the live segment and open a fresh tail.

        Order matters for crash-safety: the outgoing tail is flushed (its
        records must be durable before anything references them as
        sealed), the new segment file is created, and only then the
        manifest is atomically updated.  A crash between the steps leaves
        either the old manifest (new file is a cleanable orphan) or the
        new one — both recoverable.
        """
        self._tail.flush()
        window = self._sync_window
        if window is not None:
            # A sealed segment must be durable before the manifest marks
            # it sealed, and every pending commit ticket points into this
            # tail — sync it now and release the waiters.
            self._tail.sync()
            self.statistics.fsyncs += 1
            window.complete_all()
        entry = self._manifest.tail
        entry.sealed = True
        entry.records = self._tail.records
        entry.size = self._tail.size
        self._tail.close()
        self._create_tail_locked()
        self._manifest.save(self.directory, fsync=self.config.fsync)
        self.statistics.segments_sealed += 1
        self._trigger_compaction()

    # -- checkpoints ----------------------------------------------------------

    def wants_delta_checkpoint(self) -> bool:
        """True between base checkpoints (see ``DurabilityConfig.base_interval``).

        With ``incremental_bases`` every checkpoint after the first base
        is a delta — the compactor synthesizes the bases off the writer,
        so the writer never builds another full snapshot.
        """
        with self._lock:
            if not self._has_base:
                return False
            if self.config.incremental_bases:
                return True
            return self._deltas_since_base < self.config.base_interval

    def checkpoint(
        self, snapshot: Mapping[str, Sequence[Sequence[Any]]]
    ) -> LogRecord:
        """Write a CHECKPOINT_BASE record starting a fresh lineage.

        Unlike the monolithic fold, nothing is rewritten or truncated
        here: the base record is appended to the tail and the manifest's
        lineage pointers advance; dropping the superseded records on disk
        is the background compactor's job.
        """
        with self._lock:
            if self._closed:
                raise DurabilityError(
                    "cannot checkpoint a closed segmented engine"
                )
            record = LogRecord(
                lsn=self._next_lsn,
                record_type=LogRecordType.CHECKPOINT_BASE,
                transaction_id=0,
                snapshot={name: tuple(rows) for name, rows in snapshot.items()},
            )
            self._next_lsn += 1
            self._write_record_locked(record)
            self._flush_tail_locked()
            self._records = [record]
            self._lineage_length = 1
            self._dirty = {}
            self._has_base = True
            self._deltas_since_base = 0
            self._synthesis_due = False
            self._manifest.checkpoint_lsn = record.lsn
            self._manifest.base_lsn = record.lsn
            self._manifest.save(self.directory, fsync=self.config.fsync)
            self.statistics.checkpoints_base += 1
        self._trigger_compaction()
        return record

    def checkpoint_delta(self) -> LogRecord:
        """Write a CHECKPOINT_DELTA record folding the dirty set.

        The payload is exactly the net row changes committed since the
        previous checkpoint — already tracked incrementally at commit
        time, so no snapshot of the store is built and the pause is
        proportional to churn.

        Raises:
            DurabilityError: if no base snapshot exists yet (a delta
                without a base would have nothing to chain to).
        """
        with self._lock:
            if self._closed:
                raise DurabilityError(
                    "cannot checkpoint a closed segmented engine"
                )
            if not self._has_base:
                raise DurabilityError(
                    "cannot take a delta checkpoint before the first base "
                    "snapshot; call checkpoint() with a full snapshot first"
                )
            record = LogRecord(
                lsn=self._next_lsn,
                record_type=LogRecordType.CHECKPOINT_DELTA,
                transaction_id=0,
                delta=self._delta_payload(),
            )
            self._next_lsn += 1
            self._write_record_locked(record)
            self._flush_tail_locked()
            self._records = self._records[: self._lineage_length] + [record]
            self._lineage_length += 1
            self._dirty = {}
            self._deltas_since_base += 1
            self._manifest.checkpoint_lsn = record.lsn
            if (
                self.config.incremental_bases
                and not self._synthesis_due
                and self._deltas_since_base >= self.config.base_interval
            ):
                # Arm the off-writer base fold: seal the tail so the whole
                # delta chain lives in sealed (durable) segments the
                # compactor can read, and fix the fold's horizon at this
                # delta.  The fold itself never runs here.
                self._synthesis_cutoff = record.lsn
                self._synthesis_due = True
                if self._tail.records > 0:
                    self._seal_tail_locked()
                else:
                    self._manifest.save(self.directory, fsync=self.config.fsync)
            else:
                self._manifest.save(self.directory, fsync=self.config.fsync)
            self.statistics.checkpoints_delta += 1
        self._trigger_compaction()
        return record

    def note_checkpoint_pause(self, pause_ms: float, *, delta: bool = False) -> None:
        super().note_checkpoint_pause(pause_ms, delta=delta)
        stats = self.statistics
        stats.checkpoint_pause_ms = max(stats.checkpoint_pause_ms, pause_ms)
        if delta:
            stats.delta_pause_ms = max(stats.delta_pause_ms, pause_ms)
        else:
            stats.base_pause_ms = max(stats.base_pause_ms, pause_ms)

    def truncate(self) -> None:
        """Discard all records and start over with a fresh segment chain."""
        with self._lock:
            self._records = []
            self._lineage_length = 0
            self._dirty = {}
            self._txn_effects = {}
            self._has_base = False
            self._deltas_since_base = 0
            self._synthesis_due = False
            self._compaction_attempts = {}
            self._compaction_quarantine = set()
            if self._sync_window is not None:
                # The records any pending ticket covered are being
                # discarded — release the waiters rather than sync bytes
                # about to be deleted.
                self._sync_window.complete_all()
            self._tail.close()
            for entry in self._manifest.segments:
                os.remove(self._path(entry.name))
            self._manifest.segments = []
            self._manifest.checkpoint_lsn = 0
            self._manifest.base_lsn = 0
            self._manifest.compacted_through_lsn = 0
            self._create_tail_locked()
            self._manifest.save(self.directory, fsync=self.config.fsync)

    def attach_sink(self, sink: WalSink) -> None:
        raise DurabilityError(
            "the segmented engine IS the stable storage; WalSinks only "
            "attach to the monolithic WriteAheadLog"
        )

    # -- compaction ------------------------------------------------------------

    def _trigger_compaction(self) -> None:
        compactor = self._compactor
        if compactor is not None:
            compactor.trigger()

    def start_compactor(self):
        """Start (or return) the background compactor thread."""
        from repro.storage.compactor import Compactor

        if self._compactor is None:
            self._compactor = Compactor(
                self, interval_s=self.config.compaction_interval_s
            )
        return self._compactor

    def stop_compactor(self) -> None:
        """Stop the background compactor, if running (idempotent)."""
        compactor, self._compactor = self._compactor, None
        if compactor is not None:
            compactor.close()

    def _keep_in_compaction(
        self, record: LogRecord, base_lsn: int, checkpoint_lsn: int
    ) -> bool:
        """Drop rule: superseded by the lineage as of the given pointers.

        Checkpoint-family records survive from the current base onwards
        (older lineages are fully superseded); raw records survive only
        past the newest checkpoint.  The pointers are read once under the
        lock — if a newer checkpoint lands mid-rewrite we merely keep a
        few extra records, never drop a needed one (the lineage only
        moves forward).
        """
        if record.record_type in CHECKPOINT_TYPES:
            if record.record_type is LogRecordType.CHECKPOINT_DELTA:
                # A synthesized base reuses its newest folded delta's LSN;
                # that delta is superseded the moment the base lands, so
                # deltas survive only strictly past the base.
                return record.lsn > base_lsn
            return record.lsn >= base_lsn
        return record.lsn > checkpoint_lsn

    def _note_compaction_failure(self, name: str, exc: BaseException) -> None:
        """Count a failed pass on ``name``; quarantine after the limit.

        A sealed segment that keeps failing — typically CRC damage found
        by the compaction read — must not pin the background compactor in
        a hot retry loop: after ``_COMPACTION_ATTEMPT_LIMIT`` attempts the
        segment becomes ineligible and the rest of the chain keeps
        compacting.  The counters surface through
        :meth:`durability_statistics`.
        """
        with self._lock:
            stats = self.statistics
            stats.compaction_errors += 1
            stats.last_compaction_error = f"{name}: {exc}"
            attempts = self._compaction_attempts.get(name, 0) + 1
            self._compaction_attempts[name] = attempts
            if attempts >= _COMPACTION_ATTEMPT_LIMIT:
                self._compaction_quarantine.add(name)

    def compact_once(self) -> bool:
        """Compact (or re-certify) one sealed segment; True if work was done.

        A due base synthesis (``incremental_bases``) runs first — it
        supersedes the delta chain the pass would otherwise be compacting
        around.  The expensive part — reading the sealed file and writing
        its replacement — happens without the writer lock; only the
        manifest swap is under it.  The rewritten file is a *new
        generation* (new name): a crash before the swap leaves it as an
        orphan, a crash after the swap leaves the superseded original as
        an orphan, and the open-time cleanup removes either.
        """
        with self._compaction_lock:
            try:
                if self._synthesize_base():
                    return True
            except Exception as exc:
                with self._lock:
                    # Disarm rather than retry in a loop; the next delta
                    # checkpoint re-arms the fold with a fresh horizon.
                    self._synthesis_due = False
                    self.statistics.compaction_errors += 1
                    self.statistics.last_compaction_error = (
                        f"base synthesis: {exc}"
                    )
                raise
            with self._lock:
                if self._closed:
                    return False
                checkpoint_lsn = self._manifest.checkpoint_lsn
                base_lsn = self._manifest.base_lsn
                candidate = next(
                    (
                        entry
                        for entry in self._manifest.segments[:-1]
                        if entry.sealed
                        and entry.compacted_at_lsn < checkpoint_lsn
                        and entry.name not in self._compaction_quarantine
                    ),
                    None,
                )
                if candidate is None:
                    return False
                old_name = candidate.name
                old_generation = candidate.generation
            try:
                return self._compact_candidate(
                    candidate, old_name, old_generation, base_lsn, checkpoint_lsn
                )
            except Exception as exc:
                self._note_compaction_failure(old_name, exc)
                raise

    def _compact_candidate(
        self,
        candidate: LogSegment,
        old_name: str,
        old_generation: int,
        base_lsn: int,
        checkpoint_lsn: int,
    ) -> bool:
        old_path = self._path(old_name)
        with open(old_path, "rb") as handle:
            data = handle.read()
        scan = scan_frames(data)
        if scan.damage is not None:
            raise RecoveryError(
                f"sealed segment {old_name!r} is corrupt: {scan.damage}"
            )
        records = [
            LogRecord.from_json(payload.decode("utf-8"))
            for payload in scan.payloads
        ]
        kept = [
            record
            for record in records
            if self._keep_in_compaction(record, base_lsn, checkpoint_lsn)
        ]
        new_name = None
        new_size = 0
        if kept and len(kept) < len(records):
            new_name = segment_file_name(candidate.index, old_generation + 1)
            with open(self._path(new_name), "wb") as handle:
                for record in kept:
                    frame = encode_frame(record.to_json().encode("utf-8"))
                    handle.write(frame)
                    new_size += len(frame)
                handle.flush()
                if self.config.fsync:
                    os.fsync(handle.fileno())
        with self._lock:
            candidate.compacted_at_lsn = checkpoint_lsn
            if not kept:
                self._manifest.segments.remove(candidate)
                self.statistics.compactions += 1
                self.statistics.bytes_reclaimed += len(data)
            elif new_name is not None:
                candidate.name = new_name
                candidate.generation = old_generation + 1
                candidate.records = len(kept)
                candidate.size = new_size
                self.statistics.compactions += 1
                self.statistics.bytes_reclaimed += len(data) - new_size
            sealed = [
                entry
                for entry in self._manifest.segments[:-1]
                if entry.sealed
            ]
            self._manifest.compacted_through_lsn = min(
                (entry.compacted_at_lsn for entry in sealed),
                default=checkpoint_lsn,
            )
            self._manifest.save(self.directory, fsync=self.config.fsync)
        if not kept or new_name is not None:
            os.remove(old_path)
        return True

    @staticmethod
    def _fold_lineage(
        base: LogRecord, deltas: Sequence[LogRecord]
    ) -> dict[str, tuple]:
        """Apply a delta chain to a base snapshot (synthesized-base fold).

        Same net-change semantics as recovery replay applying the chain
        to a restored snapshot: deletes remove rows by their full value
        tuple, inserts append.  An impossible step means the chain is
        damaged and the fold must not produce a base from it.
        """
        assert base.snapshot is not None
        tables: dict[str, dict[tuple, None]] = {
            name: dict.fromkeys(tuple(row) for row in rows)
            for name, rows in base.snapshot.items()
        }
        for record in deltas:
            for name, changes in (record.delta or {}).items():
                bucket = tables.setdefault(name, {})
                for row in changes.get("delete", ()):
                    key = tuple(row)
                    if key not in bucket:
                        raise RecoveryError(
                            f"delta {record.lsn} deletes a row absent from "
                            f"the folded base of table {name!r}"
                        )
                    del bucket[key]
                for row in changes.get("insert", ()):
                    key = tuple(row)
                    if key in bucket:
                        raise RecoveryError(
                            f"delta {record.lsn} re-inserts a row already "
                            f"present in the folded base of table {name!r}"
                        )
                    bucket[key] = None
        return {name: tuple(bucket) for name, bucket in tables.items()}

    def _synthesize_base(self) -> bool:
        """Fold base + sealed delta chain into a fresh synthesized base.

        Runs on the compactor, never the writer: the fold works off the
        writer lock on an immutable copy of the lineage, the new base is
        written into its own sealed segment file, and only the install —
        splicing that segment into the front of the manifest chain and
        advancing the lineage pointers — takes the lock, exactly like a
        segment rewrite.  The synthesized record *reuses the LSN of the
        newest delta it folded*, preserving the log's total order; the
        superseded delta is filtered at install/recovery and dropped by
        compaction.  A crash before the manifest save leaves the new file
        as a cleanable orphan and the old lineage authoritative.
        """
        with self._lock:
            if self._closed or not self._synthesis_due:
                return False
            cutoff = self._synthesis_cutoff
            lineage = list(self._records[: self._lineage_length])
            checkpoint_lsn = self._manifest.checkpoint_lsn
        if not lineage or lineage[0].record_type not in SNAPSHOT_CHECKPOINT_TYPES:
            with self._lock:
                self._synthesis_due = False
            return False
        deltas = [
            r
            for r in lineage[1:]
            if r.record_type is LogRecordType.CHECKPOINT_DELTA
            and r.lsn <= cutoff
        ]
        if not deltas:
            with self._lock:
                self._synthesis_due = False
            return False
        started = time.perf_counter()
        snapshot = self._fold_lineage(lineage[0], deltas)
        base = LogRecord(
            lsn=deltas[-1].lsn,
            record_type=LogRecordType.CHECKPOINT_BASE,
            transaction_id=0,
            snapshot=snapshot,
        )
        frame = encode_frame(base.to_json().encode("utf-8"))
        with self._lock:
            if self._closed:
                return False
            index = self._manifest.next_segment_index
            self._manifest.next_segment_index += 1
        name = segment_file_name(index)
        path = self._path(name)
        with open(path, "wb") as handle:
            handle.write(frame)
            handle.flush()
            if self.config.fsync:
                os.fsync(handle.fileno())
        with self._lock:
            if (
                self._closed
                or not self._records
                or self._lineage_length < 1
                or self._records[0].lsn != lineage[0].lsn
            ):
                # The lineage was replaced under us (truncate() or an
                # explicit writer-side base); the freshly written file was
                # never referenced by the manifest — drop it.
                os.remove(path)
                self._synthesis_due = False
                return False
            entry = LogSegment(
                index=index,
                name=name,
                sealed=True,
                records=1,
                size=len(frame),
                compacted_at_lsn=checkpoint_lsn,
            )
            self._manifest.segments.insert(0, entry)
            self._manifest.base_lsn = base.lsn
            remaining = [
                r
                for r in self._records[1 : self._lineage_length]
                if r.lsn > base.lsn
            ]
            live_tail = self._records[self._lineage_length :]
            self._records = [base] + remaining + live_tail
            self._lineage_length = 1 + len(remaining)
            self._deltas_since_base = len(remaining)
            self._synthesis_due = False
            self._manifest.save(self.directory, fsync=self.config.fsync)
            self.statistics.bases_synthesized += 1
            self.statistics.base_synthesis_ms = max(
                self.statistics.base_synthesis_ms,
                (time.perf_counter() - started) * 1000.0,
            )
        self._trigger_compaction()
        return True

    def compact_now(self) -> int:
        """Synchronously compact until no sealed segment is eligible."""
        passes = 0
        while self.compact_once():
            passes += 1
        return passes

    # -- reporting / lifecycle ------------------------------------------------

    def durability_statistics(self) -> dict[str, Any]:
        """Flat ``durability.*`` counters for ``statistics_report()``."""
        stats = self.statistics
        with self._lock:
            return {
                "mode": "segmented",
                "segments_live": len(self._manifest.segments),
                "segments_sealed": stats.segments_sealed,
                "compactions": stats.compactions,
                "bytes_reclaimed": stats.bytes_reclaimed,
                "flushes": stats.flushes,
                "fsyncs": stats.fsyncs,
                "checkpoints_base": stats.checkpoints_base,
                "checkpoints_delta": stats.checkpoints_delta,
                "checkpoint_pause_ms": stats.checkpoint_pause_ms,
                "base_pause_ms": stats.base_pause_ms,
                "delta_pause_ms": stats.delta_pause_ms,
                "torn_tail_truncations": stats.torn_tail_truncations,
                "sync_windows": stats.sync_windows,
                "bases_synthesized": stats.bases_synthesized,
                "base_synthesis_ms": stats.base_synthesis_ms,
                "compaction_errors": stats.compaction_errors,
                "last_compaction_error": stats.last_compaction_error,
                "segments_quarantined": len(self._compaction_quarantine),
                "checkpoint_lsn": self._manifest.checkpoint_lsn,
                "compacted_through_lsn": self._manifest.compacted_through_lsn,
            }

    def close(self) -> None:
        """Stop the compactor, sync and close the tail (idempotent).

        With a group-fsync window the close is itself a durability point:
        one final sync covers every commit still waiting on its window
        before the tail file closes and the timer thread stops.
        """
        self.stop_compactor()
        window = self._sync_window
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if window is not None:
                self._tail.sync()
                self.statistics.fsyncs += 1
                window.complete_all()
            tail = self._manifest.tail
            tail.records = self._tail.records
            tail.size = self._tail.size
            self._tail.close()
            self._manifest.save(self.directory, fsync=self.config.fsync)
        if window is not None:
            window.stop()
