"""A small DPLL SAT solver.

Section 6 of the paper points out that maintaining the composed-body
invariant is an instance of the Satisfiability problem, which exhibits phase
transitions: comfortably under- or over-constrained instances are easy,
instances near the critical clause/variable ratio are hard, and a quantum
database could detect the approach of the hard region and switch to a more
aggressive fixing phase.  This module provides the propositional machinery
(CNF formulas and a DPLL solver with unit propagation and pure-literal
elimination) used by the phase-transition ablation benchmark and by tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.errors import SolverError


@dataclass(frozen=True)
class Literal:
    """A propositional literal: a variable name with a polarity."""

    variable: str
    positive: bool = True

    def negate(self) -> "Literal":
        """The complementary literal."""
        return Literal(self.variable, not self.positive)

    def satisfied_by(self, assignment: Mapping[str, bool]) -> bool | None:
        """True/False if decided by ``assignment``, None if still free."""
        value = assignment.get(self.variable)
        if value is None:
            return None
        return value if self.positive else not value

    def __repr__(self) -> str:
        return self.variable if self.positive else f"¬{self.variable}"


@dataclass(frozen=True)
class Clause:
    """A disjunction of literals."""

    literals: tuple[Literal, ...]

    def variables(self) -> frozenset[str]:
        """Variables mentioned by the clause."""
        return frozenset(lit.variable for lit in self.literals)

    def status(self, assignment: Mapping[str, bool]) -> bool | None:
        """True if satisfied, False if violated, None if undecided."""
        undecided = False
        for literal in self.literals:
            value = literal.satisfied_by(assignment)
            if value is True:
                return True
            if value is None:
                undecided = True
        return None if undecided else False

    def unassigned_literals(self, assignment: Mapping[str, bool]) -> tuple[Literal, ...]:
        """Literals whose variable is not yet assigned."""
        return tuple(
            lit for lit in self.literals if lit.variable not in assignment
        )

    def __repr__(self) -> str:
        return "(" + " ∨ ".join(repr(lit) for lit in self.literals) + ")"


class CNF:
    """A conjunction of clauses."""

    def __init__(self, clauses: Iterable[Clause | Sequence[Literal]] = ()) -> None:
        self.clauses: list[Clause] = []
        for clause in clauses:
            self.add_clause(clause)

    def add_clause(self, clause: Clause | Sequence[Literal]) -> Clause:
        """Add a clause (a :class:`Clause` or a sequence of literals)."""
        if not isinstance(clause, Clause):
            clause = Clause(tuple(clause))
        if not clause.literals:
            raise SolverError("empty clauses are not allowed (trivially UNSAT)")
        self.clauses.append(clause)
        return clause

    def variables(self) -> frozenset[str]:
        """All variables mentioned by the formula."""
        result: set[str] = set()
        for clause in self.clauses:
            result |= clause.variables()
        return frozenset(result)

    def is_satisfied_by(self, assignment: Mapping[str, bool]) -> bool:
        """True if every clause is satisfied under a complete assignment."""
        return all(clause.status(assignment) is True for clause in self.clauses)

    def __len__(self) -> int:
        return len(self.clauses)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return " ∧ ".join(repr(c) for c in self.clauses)


@dataclass
class DPLLStatistics:
    """Work counters for one DPLL run."""

    decisions: int = 0
    unit_propagations: int = 0
    backtracks: int = 0


class DPLLSolver:
    """Davis–Putnam–Logemann–Loveland search with unit propagation."""

    def __init__(self) -> None:
        self.statistics = DPLLStatistics()

    def solve(self, cnf: CNF) -> dict[str, bool] | None:
        """Return a satisfying assignment or ``None`` if UNSAT."""
        self.statistics = DPLLStatistics()
        return self._search(cnf, {})

    def is_satisfiable(self, cnf: CNF) -> bool:
        """True if the formula is satisfiable."""
        return self.solve(cnf) is not None

    # -- internals -----------------------------------------------------------

    def _search(
        self, cnf: CNF, assignment: dict[str, bool]
    ) -> dict[str, bool] | None:
        assignment = dict(assignment)
        if not self._propagate(cnf, assignment):
            self.statistics.backtracks += 1
            return None
        status = [clause.status(assignment) for clause in cnf.clauses]
        if all(s is True for s in status):
            # Complete the assignment for variables not forced either way.
            for variable in cnf.variables():
                assignment.setdefault(variable, True)
            return assignment
        variable = self._pick_variable(cnf, assignment)
        if variable is None:
            self.statistics.backtracks += 1
            return None
        for value in (True, False):
            self.statistics.decisions += 1
            assignment[variable] = value
            result = self._search(cnf, assignment)
            if result is not None:
                return result
            del assignment[variable]
        self.statistics.backtracks += 1
        return None

    def _propagate(self, cnf: CNF, assignment: dict[str, bool]) -> bool:
        """Unit propagation; returns False on conflict."""
        changed = True
        while changed:
            changed = False
            for clause in cnf.clauses:
                status = clause.status(assignment)
                if status is False:
                    return False
                if status is True:
                    continue
                unassigned = clause.unassigned_literals(assignment)
                if len(unassigned) == 1:
                    literal = unassigned[0]
                    assignment[literal.variable] = literal.positive
                    self.statistics.unit_propagations += 1
                    changed = True
        return True

    @staticmethod
    def _pick_variable(cnf: CNF, assignment: Mapping[str, bool]) -> str | None:
        """Pick the unassigned variable occurring in the most undecided clauses."""
        counts: dict[str, int] = {}
        for clause in cnf.clauses:
            if clause.status(assignment) is not None:
                continue
            for literal in clause.unassigned_literals(assignment):
                counts[literal.variable] = counts.get(literal.variable, 0) + 1
        if not counts:
            return None
        return max(counts, key=lambda v: counts[v])
