"""Per-session and per-tenant backpressure.

The global queue bound still applies; ``ServerConfig(session_quota=N)``
additionally caps how many items a single session may have queued at once,
raising the typed :class:`~repro.errors.SessionBackpressure` instead of
letting that session occupy the shared queue.  One rung up,
``ServerConfig(tenant_quota=N)`` caps the *combined* in-flight items of
every session opened under the same tenant name — a tenant opening many
sessions (or, over TCP, many connections) cannot multiply its share.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.quantum_database import QuantumConfig, QuantumDatabase
from repro.errors import SessionBackpressure, TenantBackpressure
from repro.server import QuantumServer, ServerConfig
from repro.workloads.flights import FlightDatabaseSpec, build_flight_database

SPEC = FlightDatabaseSpec(num_flights=2, rows_per_flight=6)


def make_qdb() -> QuantumDatabase:
    return QuantumDatabase(build_flight_database(SPEC), QuantumConfig(k=16))


def booking(name: str, flight: int) -> str:
    return (
        f"-Available({flight}, ?s), +Bookings('{name}', {flight}, ?s)"
        f" :-1 Available({flight}, ?s)"
    )


def test_session_over_quota_gets_typed_error():
    async def scenario():
        qdb = make_qdb()
        config = ServerConfig(session_quota=2)
        async with QuantumServer(qdb, config) as server:
            session = server.session(client="flooder")
            # Schedule three submissions before the writer runs once: the
            # third exceeds the quota of two and must fail fast with the
            # typed error instead of queueing.
            first = asyncio.ensure_future(session.commit(booking("a", 100)))
            second = asyncio.ensure_future(session.commit(booking("b", 100)))
            third = asyncio.ensure_future(session.commit(booking("c", 100)))
            results = await asyncio.gather(first, second, third, return_exceptions=True)
            committed = [r for r in results if not isinstance(r, Exception)]
            refused = [r for r in results if isinstance(r, SessionBackpressure)]
            assert len(committed) == 2
            assert len(refused) == 1
            assert server.statistics.backpressure_rejections == 1
            assert session.statistics.backpressure == 1
            # The refused submission never entered the system.
            assert server.statistics.commits == 2
            await session.close()

    asyncio.run(scenario())


def test_other_sessions_unaffected_by_backpressured_peer():
    async def scenario():
        qdb = make_qdb()
        config = ServerConfig(session_quota=1)
        async with QuantumServer(qdb, config) as server:
            flooder = server.session(client="flooder")
            polite = server.session(client="polite")
            flood = [
                asyncio.ensure_future(flooder.commit(booking(f"f{i}", 100)))
                for i in range(4)
            ]
            polite_result = asyncio.ensure_future(polite.commit(booking("p", 101)))
            results = await asyncio.gather(*flood, return_exceptions=True)
            refused = [r for r in results if isinstance(r, SessionBackpressure)]
            assert refused, "the flooder should have been backpressured"
            # The polite session's commit went through untouched.
            assert (await polite_result).committed
            assert polite.statistics.backpressure == 0
            await flooder.close()
            await polite.close()

    asyncio.run(scenario())


def test_quota_slots_recycle_after_completion():
    async def scenario():
        qdb = make_qdb()
        config = ServerConfig(session_quota=1)
        async with QuantumServer(qdb, config) as server:
            async with server.session(client="steady") as session:
                # Sequential awaits never trip the quota: each slot is
                # released when its item resolves.
                for index in range(5):
                    result = await session.commit(booking(f"s{index}", 100))
                    assert result.committed
                assert session.statistics.backpressure == 0
                assert server.statistics.backpressure_rejections == 0

    asyncio.run(scenario())


def test_zero_quota_rejected_at_configuration_time():
    from repro.errors import QuantumError

    with pytest.raises(QuantumError):
        ServerConfig(session_quota=0)
    with pytest.raises(QuantumError):
        ServerConfig(session_quota=-1)


def test_no_quota_means_no_typed_errors():
    async def scenario():
        qdb = make_qdb()
        async with QuantumServer(qdb, ServerConfig()) as server:
            async with server.session(client="burst") as session:
                tasks = [
                    asyncio.ensure_future(session.commit(booking(f"b{i}", 100)))
                    for i in range(8)
                ]
                results = await asyncio.gather(*tasks)
                assert all(r.committed for r in results)
                assert server.statistics.backpressure_rejections == 0

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Tenant quota: the second rung of the backpressure ladder
# ---------------------------------------------------------------------------


def test_tenant_quota_caps_combined_sessions():
    """Two sessions of one tenant share the tenant's quota: scheduling four
    submissions against ``tenant_quota=2`` refuses two with the typed
    error, regardless of which session carried them."""

    async def scenario():
        qdb = make_qdb()
        config = ServerConfig(tenant_quota=2)
        async with QuantumServer(qdb, config) as server:
            left = server.session(client="left", tenant="acme")
            right = server.session(client="right", tenant="acme")
            futures = [
                asyncio.ensure_future(left.commit(booking("l0", 100))),
                asyncio.ensure_future(right.commit(booking("r0", 100))),
                asyncio.ensure_future(left.commit(booking("l1", 100))),
                asyncio.ensure_future(right.commit(booking("r1", 100))),
            ]
            results = await asyncio.gather(*futures, return_exceptions=True)
            refused = [r for r in results if isinstance(r, TenantBackpressure)]
            committed = [r for r in results if not isinstance(r, Exception)]
            assert len(refused) == 2
            assert len(committed) == 2
            assert server.statistics.tenant_rejections == 2
            assert (
                left.statistics.tenant_backpressure
                + right.statistics.tenant_backpressure
            ) == 2
            # The refused submissions never entered the system.
            assert server.statistics.commits == 2
            # Refusals must not leak quota slots: sequential submissions
            # afterwards sail through.
            assert (await left.commit(booking("l2", 100))).committed
            assert (await right.commit(booking("r2", 100))).committed
            await left.close()
            await right.close()

    asyncio.run(scenario())


def test_tenant_quota_isolates_other_tenants():
    """A flooding tenant trips only its own quota; a different tenant and a
    tenant-less session submit untouched."""

    async def scenario():
        qdb = make_qdb()
        config = ServerConfig(tenant_quota=1)
        async with QuantumServer(qdb, config) as server:
            flooder = server.session(client="flooder", tenant="noisy")
            other = server.session(client="other", tenant="quiet")
            free = server.session(client="free")  # no tenant: exempt
            flood = [
                asyncio.ensure_future(flooder.commit(booking(f"f{i}", 100)))
                for i in range(4)
            ]
            other_future = asyncio.ensure_future(other.commit(booking("o", 101)))
            free_future = asyncio.ensure_future(free.commit(booking("n", 101)))
            results = await asyncio.gather(*flood, return_exceptions=True)
            refused = [r for r in results if isinstance(r, TenantBackpressure)]
            assert len(refused) == 3
            assert (await other_future).committed
            assert (await free_future).committed
            assert other.statistics.tenant_backpressure == 0
            assert free.statistics.tenant_backpressure == 0
            for session in (flooder, other, free):
                await session.close()

    asyncio.run(scenario())


def test_session_quota_checked_before_tenant_quota():
    """The ladder's order is observable: a submission that trips *both*
    rungs reports the session quota (the lower rung), and — critically —
    the refusal consumes no tenant slot."""

    async def scenario():
        qdb = make_qdb()
        config = ServerConfig(session_quota=1, tenant_quota=1)
        async with QuantumServer(qdb, config) as server:
            session = server.session(client="both", tenant="acme")
            first = asyncio.ensure_future(session.commit(booking("a", 100)))
            second = asyncio.ensure_future(session.commit(booking("b", 100)))
            results = await asyncio.gather(first, second, return_exceptions=True)
            assert isinstance(results[1], SessionBackpressure)
            assert server.statistics.tenant_rejections == 0
            # The tenant slot released with the first commit; a fresh
            # session of the same tenant is not blocked by residue.
            other = server.session(client="sibling", tenant="acme")
            assert (await other.commit(booking("c", 100))).committed
            await session.close()
            await other.close()

    asyncio.run(scenario())


def test_tenant_quota_validated_at_configuration_time():
    from repro.errors import QuantumError

    with pytest.raises(QuantumError):
        ServerConfig(tenant_quota=0)
    with pytest.raises(QuantumError):
        ServerConfig(tenant_quota=-3)
