"""The manifest: the segmented log's single source of structural truth.

The manifest file records the live segment chain (in replay order), the
checkpoint lineage positions (latest base snapshot and latest checkpoint
of any kind) and the compaction watermark.  Every update is written to a
temporary file, flushed, and atomically renamed over the old manifest
(``os.replace``), so a crash at any instant leaves either the old or the
new manifest — never a half-written one.  A leftover ``MANIFEST.tmp`` is
simply discarded at the next open: the rename that would have made it
authoritative never happened.

Segment *files* not named by the manifest are orphans — a compactor
killed between writing its rewritten file and the manifest swap (the new
file is the orphan), or killed between the swap and deleting the old
file (the old file is the orphan).  The engine deletes them at open.
A base synthesized off the writer (``incremental_bases``) follows the
same discipline: its single-record segment is written first and spliced
into the *front* of the chain by one manifest save — a crash before that
save leaves the file as a cleanable orphan and the old lineage
authoritative.  The chain is therefore ordered for replay (synthesized
bases first), not strictly by segment index.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.errors import RecoveryError
from repro.storage.segment import LogSegment

MANIFEST_NAME = "MANIFEST"
MANIFEST_TMP_NAME = "MANIFEST.tmp"

_FORMAT_VERSION = 1


@dataclass
class Manifest:
    """In-memory image of the manifest file.

    Attributes:
        segments: the live segment chain, oldest first; the last entry is
            the unsealed tail.
        checkpoint_lsn: LSN of the newest checkpoint record of any kind
            (0 before the first checkpoint).  Records at or below this
            LSN are superseded by the checkpoint lineage — the
            compactor's drop rule.
        base_lsn: LSN of the newest full-snapshot checkpoint
            (``CHECKPOINT_BASE``); lineage records below it are stale.
        compacted_through_lsn: compaction watermark — every sealed
            segment has been compacted against at least this checkpoint
            LSN.
        next_segment_index: index the next created segment will take
            (indexes are never reused, even across compactions).
    """

    segments: list[LogSegment] = field(default_factory=list)
    checkpoint_lsn: int = 0
    base_lsn: int = 0
    compacted_through_lsn: int = 0
    next_segment_index: int = 1

    def segment_names(self) -> set[str]:
        """File names of every live segment."""
        return {segment.name for segment in self.segments}

    @property
    def tail(self) -> LogSegment:
        """The unsealed tail segment (the chain is never empty once open)."""
        return self.segments[-1]

    def to_payload(self) -> dict:
        return {
            "version": _FORMAT_VERSION,
            "segments": [segment.to_payload() for segment in self.segments],
            "checkpoint_lsn": self.checkpoint_lsn,
            "base_lsn": self.base_lsn,
            "compacted_through_lsn": self.compacted_through_lsn,
            "next_segment_index": self.next_segment_index,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Manifest":
        try:
            if payload["version"] != _FORMAT_VERSION:
                raise RecoveryError(
                    f"unsupported manifest version {payload['version']!r}"
                )
            return cls(
                segments=[
                    LogSegment.from_payload(entry)
                    for entry in payload["segments"]
                ],
                checkpoint_lsn=payload["checkpoint_lsn"],
                base_lsn=payload["base_lsn"],
                compacted_through_lsn=payload["compacted_through_lsn"],
                next_segment_index=payload["next_segment_index"],
            )
        except (KeyError, TypeError) as exc:
            raise RecoveryError(f"malformed manifest: {exc}") from exc

    def save(self, directory: str | os.PathLike, *, fsync: bool = True) -> None:
        """Atomically persist the manifest into ``directory``.

        Write-temp / flush / rename: a crash before the ``os.replace``
        leaves the old manifest authoritative (plus a harmless ``.tmp``);
        a crash after it leaves the new one.  There is no in-between.
        """
        directory = os.fspath(directory)
        tmp_path = os.path.join(directory, MANIFEST_TMP_NAME)
        final_path = os.path.join(directory, MANIFEST_NAME)
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(self.to_payload(), handle, indent=1)
            handle.write("\n")
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp_path, final_path)

    @classmethod
    def load(cls, directory: str | os.PathLike) -> "Manifest | None":
        """Read the manifest from ``directory`` (None if there is none)."""
        path = os.path.join(os.fspath(directory), MANIFEST_NAME)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except FileNotFoundError:
            return None
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise RecoveryError(f"unreadable manifest at {path}: {exc}") from exc
        return cls.from_payload(payload)
