"""Shutdown ordering on sharded servers: drain, join executors, checkpoint.

``QuantumServer.shutdown()`` on a ``shards=N`` database must (in order)
drain the admission queue — completing any grounding whose plans are in
flight on the shard executors — then join those executors (thread pools
and process pools alike) and fold the WAL into a checkpoint, all without
deadlocking.  Every test runs under ``asyncio.wait_for`` so an ordering
bug fails loudly instead of hanging the suite.
"""

from __future__ import annotations

import asyncio

import pytest

from repro import (
    QuantumConfig,
    QuantumDatabase,
    QuantumServer,
    ServerConfig,
    parse_transaction,
)
from repro.errors import GroundingTimeout, QuantumError
from repro.relational.wal import LogRecordType

BACKENDS = ("thread", "process")


def make_qdb(*, backend, shards=2, k=16, flights=6, seats=3):
    qdb = QuantumDatabase(
        config=QuantumConfig(k=k, shards=shards, shard_backend=backend)
    )
    qdb.create_table("Available", ["flight", "seat"], key=["flight", "seat"])
    qdb.create_table(
        "Bookings", ["passenger", "flight", "seat"], key=["flight", "seat"]
    )
    qdb.load_rows(
        "Available",
        [(f, f"s{i}") for f in range(1, flights + 1) for i in range(seats)],
    )
    return qdb


def booking(user, flight):
    return parse_transaction(
        f"-Available({flight}, ?s), +Bookings('{user}', {flight}, ?s)"
        f" :-1 Available({flight}, ?s)"
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_close_while_plans_in_flight(backend):
    """Shutdown drains a queued ground-all whose plans fan out per shard."""

    async def main():
        qdb = make_qdb(backend=backend)
        server = await QuantumServer(qdb).start()
        async with server.session(client="loader") as session:
            for flight in range(1, 7):
                result = await session.commit(booking(f"u{flight}", flight))
                assert result.committed
        assert qdb.pending_count == 6
        # Enqueue the grounding but shut down before awaiting it: FIFO
        # ordering puts the shutdown sentinel behind it, so the drain loop
        # must fan the plans out to the shard executors (starting them
        # lazily, mid-shutdown) and apply them before the server exits.
        ground_task = asyncio.create_task(server.ground_all())
        await asyncio.sleep(0)
        await server.shutdown()
        grounded = await ground_task
        assert len(grounded) == 6
        assert qdb.pending_count == 0
        # Executors were joined (thread and process pools alike) ...
        assert not any(shard.started for shard in qdb.state.partitions.shards)
        # ... the WAL was folded into a checkpoint ...
        records = list(qdb.database.wal.records())
        assert records and records[0].record_type is LogRecordType.CHECKPOINT
        # ... and the server no longer accepts work.
        with pytest.raises(QuantumError):
            await server.ground_all()
        return qdb

    asyncio.run(asyncio.wait_for(main(), timeout=60))


@pytest.mark.parametrize("backend", BACKENDS)
def test_shutdown_idempotent_after_grounding(backend):
    """A second shutdown (and a post-shutdown close) is a no-op."""

    async def main():
        qdb = make_qdb(backend=backend)
        async with QuantumServer(qdb) as server:
            async with server.session(client="c") as session:
                for flight in (1, 2, 3):
                    await session.commit(booking(f"v{flight}", flight))
                await session.ground(
                    [t.transaction_id for t in qdb.state.pending_transactions()]
                )
        await server.shutdown()  # idempotent
        qdb.close()  # executors already joined; also idempotent
        assert qdb.pending_count == 0

    asyncio.run(asyncio.wait_for(main(), timeout=60))


def test_grounding_timeout_resolves_submitter_without_wedging_writer():
    """A hung plan resolves the submitter with GroundingTimeout; the writer
    keeps serving later work and shutdown still completes."""

    async def main():
        qdb = make_qdb(backend="thread")
        server = await QuantumServer(
            qdb, ServerConfig(grounding_timeout_s=0.05)
        ).start()
        async with server.session(client="c") as session:
            for flight in (1, 2):
                await session.commit(booking(f"w{flight}", flight))
            original = qdb.state.plan_grounding

            def hung_plan(partition, targets, *, forced=False):
                import time

                time.sleep(0.3)
                return original(partition, targets, forced=forced)

            qdb.state.plan_grounding = hung_plan
            with pytest.raises(GroundingTimeout):
                await session.ground(
                    [t.transaction_id for t in qdb.state.pending_transactions()]
                )
            # The timeout applied nothing: both transactions stay pending,
            # and the writer is alive — admission (which never touches the
            # stuck plan executors) proceeds immediately.
            assert qdb.pending_count == 2
            result = await session.commit(booking("w3", 3))
            assert result.committed
            # Once the hung plans actually drain off the shard workers, a
            # retry grounds everything normally.
            qdb.state.plan_grounding = original
            await asyncio.sleep(0.4)
            grounded = await session.ground(
                [t.transaction_id for t in qdb.state.pending_transactions()]
            )
            assert len(grounded) == 3
        await server.shutdown()

    asyncio.run(asyncio.wait_for(main(), timeout=60))
