"""Parsing and formatting of the Datalog-like transaction notation.

The paper's prototype "does not accept and parse resource transactions in
their SQL format, but only in the intermediate Datalog-like representation"
(Section 4); this module implements that representation.  The running
example from Section 2 is written::

    -Available(f1, s1), +Bookings('Mickey', f1, s1)
        :-1 Available(f1, s1), [Bookings('Goofy', f1, s2)], [Adjacent(s1, s2)]

Syntax summary:

* the update portion precedes ``:-1`` (the ``CHOOSE 1`` marker); each update
  atom is prefixed ``+`` (insert) or ``-`` (delete);
* the body follows ``:-1``; atoms wrapped in square brackets are OPTIONAL
  (the paper underlines them);
* terms are either constants — quoted strings, numbers, ``true``/``false``,
  ``null`` — or variables.  A bare identifier starting with a lowercase
  letter is a variable; an identifier starting with an uppercase letter is a
  constant string (so ``Mickey`` works unquoted); a ``?``-prefixed
  identifier is always a variable regardless of case.

:func:`format_transaction` produces text that :func:`parse_transaction`
round-trips exactly; the pending-transactions table uses this for
durability.
"""

from __future__ import annotations

import re
from typing import Any

from repro.errors import ParseError
from repro.core.resource_transaction import ResourceTransaction
from repro.logic.atoms import Atom, AtomKind
from repro.logic.terms import Constant, Term, Variable

#: Token specification for the tokenizer.
_TOKEN_SPEC = [
    ("CHOOSE", r":-\s*\d+"),
    ("STRING", r"'(?:[^'\\]|\\.)*'|\"(?:[^\"\\]|\\.)*\""),
    ("NUMBER", r"-?\d+\.\d+|-?\d+"),
    ("NAME", r"\??[A-Za-z_][A-Za-z_0-9]*"),
    ("PLUS", r"\+"),
    ("MINUS", r"-"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("LBRACKET", r"\["),
    ("RBRACKET", r"\]"),
    ("COMMA", r","),
    ("WS", r"\s+"),
]
_TOKEN_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))


class _Token:
    __slots__ = ("kind", "text", "position")

    def __init__(self, kind: str, text: str, position: int) -> None:
        self.kind = kind
        self.text = text
        self.position = position

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind}({self.text!r})"


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(
                f"unexpected character {text[position]!r} at position {position}"
            )
        kind = match.lastgroup or ""
        if kind != "WS":
            tokens.append(_Token(kind, match.group(), position))
        position = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: list[_Token], source: str) -> None:
        self.tokens = tokens
        self.source = source
        self.index = 0

    # -- token helpers -------------------------------------------------------

    def _peek(self) -> _Token | None:
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError(f"unexpected end of input in {self.source!r}")
        self.index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._next()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind} but found {token.text!r} at position "
                f"{token.position} in {self.source!r}"
            )
        return token

    def _accept(self, kind: str) -> _Token | None:
        token = self._peek()
        if token is not None and token.kind == kind:
            self.index += 1
            return token
        return None

    # -- grammar -------------------------------------------------------------

    def parse(self) -> tuple[tuple[Atom, ...], int, tuple[Atom, ...]]:
        updates = self._parse_updates()
        choose_token = self._expect("CHOOSE")
        choose = int(choose_token.text.split("-", 1)[1])
        body = self._parse_body()
        if self._peek() is not None:
            trailing = self._peek()
            raise ParseError(
                f"unexpected trailing input {trailing.text!r} at position "
                f"{trailing.position}"
            )
        return updates, choose, body

    def _parse_updates(self) -> tuple[Atom, ...]:
        atoms: list[Atom] = []
        while True:
            token = self._peek()
            if token is None:
                raise ParseError("missing ':-1' separator")
            if token.kind == "CHOOSE":
                break
            if token.kind == "PLUS":
                self._next()
                atoms.append(self._parse_atom(AtomKind.INSERT))
            elif token.kind == "MINUS":
                self._next()
                atoms.append(self._parse_atom(AtomKind.DELETE))
            else:
                raise ParseError(
                    f"update atoms must start with '+' or '-', found {token.text!r} "
                    f"at position {token.position}"
                )
            if not self._accept("COMMA"):
                # Next token must be the CHOOSE separator.
                continue
        return tuple(atoms)

    def _parse_body(self) -> tuple[Atom, ...]:
        atoms: list[Atom] = []
        while True:
            token = self._peek()
            if token is None:
                break
            if token.kind == "LBRACKET":
                self._next()
                atom = self._parse_atom(AtomKind.BODY, optional=True)
                self._expect("RBRACKET")
                atoms.append(atom)
            else:
                atoms.append(self._parse_atom(AtomKind.BODY))
            if not self._accept("COMMA"):
                break
        if not atoms:
            raise ParseError("a resource transaction body cannot be empty")
        return tuple(atoms)

    def _parse_atom(self, kind: AtomKind, *, optional: bool = False) -> Atom:
        name_token = self._expect("NAME")
        relation = name_token.text
        if relation.startswith("?"):
            raise ParseError(
                f"relation name cannot start with '?' at position {name_token.position}"
            )
        self._expect("LPAREN")
        terms: list[Term] = []
        if self._accept("RPAREN") is None:
            while True:
                terms.append(self._parse_term())
                if self._accept("COMMA"):
                    continue
                self._expect("RPAREN")
                break
        return Atom(relation, tuple(terms), kind, optional)

    def _parse_term(self) -> Term:
        token = self._next()
        if token.kind == "STRING":
            return Constant(_unquote(token.text))
        if token.kind == "NUMBER":
            text = token.text
            return Constant(float(text) if "." in text else int(text))
        if token.kind == "MINUS":
            number = self._expect("NUMBER")
            value = float(number.text) if "." in number.text else int(number.text)
            return Constant(-value)
        if token.kind == "NAME":
            return _term_from_name(token.text)
        raise ParseError(
            f"expected a term but found {token.text!r} at position {token.position}"
        )


def _unquote(text: str) -> str:
    body = text[1:-1]
    return body.replace("\\'", "'").replace('\\"', '"').replace("\\\\", "\\")


def _term_from_name(name: str) -> Term:
    if name.startswith("?"):
        return Variable(name[1:])
    lowered = name.lower()
    if lowered == "true":
        return Constant(True)
    if lowered == "false":
        return Constant(False)
    if lowered in ("null", "none"):
        return Constant(None)
    if name[0].islower() or name[0] == "_":
        return Variable(name)
    return Constant(name)


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def parse_transaction(
    text: str,
    *,
    transaction_id: int | None = None,
    client: str | None = None,
    partner: str | None = None,
) -> ResourceTransaction:
    """Parse a Datalog-like resource transaction.

    Args:
        text: the transaction text (see module docstring for the syntax).
        transaction_id: explicit id (auto-assigned when omitted).
        client: requesting user name.
        partner: coordination partner (entangled transactions).

    Raises:
        ParseError: on any syntax error.
        InvalidTransactionError: if the parsed transaction violates a
            structural rule (e.g. range restriction).
    """
    tokens = _tokenize(text)
    updates, choose, body = _Parser(tokens, text).parse()
    kwargs: dict[str, Any] = {
        "body": body,
        "updates": updates,
        "choose": choose,
        "client": client,
        "partner": partner,
    }
    if transaction_id is not None:
        kwargs["transaction_id"] = transaction_id
    return ResourceTransaction(**kwargs)


def format_term(term: Term) -> str:
    """Format a term so that :func:`parse_transaction` round-trips it."""
    if isinstance(term, Variable):
        return f"?{term.name}"
    value = term.value
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace("'", "\\'")
        return f"'{escaped}'"
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    return repr(value)


def format_atom(atom: Atom) -> str:
    """Format an atom in the textual notation (without the optional brackets)."""
    prefix = {AtomKind.BODY: "", AtomKind.INSERT: "+", AtomKind.DELETE: "-"}[atom.kind]
    inner = ", ".join(format_term(t) for t in atom.terms)
    return f"{prefix}{atom.relation}({inner})"


def format_transaction(transaction: ResourceTransaction) -> str:
    """Format a transaction so that :func:`parse_transaction` round-trips it."""
    updates = ", ".join(format_atom(a) for a in transaction.updates)
    body_parts = []
    for atom in transaction.body:
        text = format_atom(atom)
        body_parts.append(f"[{text}]" if atom.optional else text)
    body = ", ".join(body_parts)
    return f"{updates} :-{transaction.choose} {body}"
