"""Eager-assignment baseline: classical execute-at-commit semantics.

A conventional DBMS "cannot commit without a concrete value being assigned,
so deferred assignment is not possible" (Section 1).  :class:`EagerClient`
models that world: it accepts the *same* resource transactions as the
quantum database but grounds them immediately at submission time, choosing
a grounding that satisfies as many optional atoms as possible *right now*
and executing the update portion on the spot.

This baseline is used by the ablation benchmarks to isolate the benefit of
deferral itself (as opposed to the benefit of declaring preferences): the
eager client knows the user's preferences but cannot wait for the partner
to arrive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.composition import rewrite_atom_against_updates
from repro.core.resource_transaction import ResourceTransaction
from repro.logic.formula import conjunction
from repro.relational.database import Database
from repro.solver.grounding import GroundingSearch


@dataclass
class EagerResult:
    """Outcome of an eager execution.

    Attributes:
        transaction: the submitted transaction.
        executed: False when no grounding existed (the transaction aborts).
        valuation: the chosen grounding (empty when not executed).
        satisfied_optionals: optional atoms satisfied by the chosen
            grounding at execution time.
    """

    transaction: ResourceTransaction
    executed: bool
    valuation: dict[str, Any]
    satisfied_optionals: int = 0

    @property
    def coordinated(self) -> bool:
        """True if every optional atom was satisfied."""
        total = len(self.transaction.optional_body)
        return total > 0 and self.satisfied_optionals == total


class EagerClient:
    """Executes resource transactions immediately, with no deferral."""

    def __init__(self, database: Database) -> None:
        self.database = database
        self.search = GroundingSearch(database)
        self.results: list[EagerResult] = []

    def execute(self, transaction: ResourceTransaction) -> EagerResult:
        """Ground and execute ``transaction`` right now.

        The grounding preferentially satisfies optional atoms (all of them
        first, then a greedy maximal subset), mirroring the non-deferred
        semantics sketched in Section 2 of the paper.
        """
        hard = transaction.hard_formula()
        required = transaction.hard_variables()
        optional_factors = [
            rewrite_atom_against_updates(atom, []) for atom in transaction.optional_body
        ]
        chosen = None
        satisfied = 0
        if optional_factors:
            result = self.search.find_one(
                conjunction([hard, *optional_factors]), required=required
            )
            if result.satisfiable:
                chosen = result.substitution
                satisfied = len(optional_factors)
        if chosen is None and optional_factors:
            accepted = []
            for factor in optional_factors:
                trial = conjunction([hard, *accepted, factor])
                if self.search.exists(trial):
                    accepted.append(factor)
            result = self.search.find_one(
                conjunction([hard, *accepted]), required=required
            )
            if result.satisfiable:
                chosen = result.substitution
                satisfied = len(accepted)
        if chosen is None:
            result = self.search.find_one(hard, required=required)
            if result.satisfiable:
                chosen = result.substitution
        if chosen is None:
            outcome = EagerResult(transaction, False, {}, 0)
            self.results.append(outcome)
            return outcome
        with self.database.begin() as txn:
            for statement in transaction.ground_updates(chosen):
                txn.apply(statement)
        from repro.logic.terms import Constant

        valuation = {
            var.name: term.value
            for var, term in chosen.items()
            if isinstance(term, Constant)
        }
        outcome = EagerResult(transaction, True, valuation, satisfied)
        self.results.append(outcome)
        return outcome

    def coordination_percentage(self) -> float:
        """Percentage of executed transactions with all optionals satisfied."""
        with_optionals = [
            r for r in self.results if r.executed and r.transaction.optional_body
        ]
        if not with_optionals:
            return 0.0
        coordinated = sum(1 for r in with_optionals if r.coordinated)
        return 100.0 * coordinated / len(with_optionals)
