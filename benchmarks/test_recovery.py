"""Recovery benchmark — checkpoint pause ∝ churn, bounded restart replay.

Twin stores run the same churn workload: a large table with a small
per-round churn (store ≥ 10× churn), checkpointing after every round.
The legacy monolithic log folds the *entire* snapshot at each checkpoint;
the segmented engine writes one ``CHECKPOINT_BASE`` up front and then
``CHECKPOINT_DELTA`` records carrying only the net churn — so its
steady-state checkpoint pause must land well below the legacy fold.  The
run then compacts the sealed segments (reclaimed bytes must be positive)
and times a cold :func:`repro.storage.recover` of the directory, checking
the recovered store row-for-row against the legacy replay.

The segmented twin runs with ``incremental_bases``: the writer folds the
full store exactly once (the first base) and later bases are synthesized
off-writer by the compaction pass, so ``writer_base_folds`` must stay at
1 while ``bases_synthesized`` is positive.  A second, windowed mini-run
(``fsync=True`` with a group-fsync window) measures ``fsyncs_per_commit``
under concurrent committers — structurally below 1, since commits share
deferred group syncs.

Results land in the ``"durability"`` section of ``BENCH_admission.json``
(read-modify-write, like the ``"network"`` section) where
``scripts/bench_gate.py`` gates them: recovery time and the max delta
checkpoint pause — normalized by the run's anchor admission throughput, a
machine-speed proxy — must not grow beyond tolerance, compaction must
keep reclaiming bytes, the delta pause must stay below the legacy
full-snapshot pause, windowed fsyncs-per-commit must stay below 1, and
the writer must never fold a second base.  Run via ``make recoverbench``
(part of ``make check``); not smoke-marked, so ``make smoke`` keeps its
budget.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

import pytest

from benchmarks.conftest import BENCH_SCALE, report
from repro.experiments.report import format_table
from repro.relational.database import Database
from repro.relational.recovery import recover_database
from repro.relational.wal import FileWalSink, LogRecordType, WriteAheadLog
from repro.storage import DurabilityConfig, SegmentedWriteAheadLog, recover

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_JSON = REPO_ROOT / "BENCH_admission.json"

#: (store rows, churned rows per checkpoint, checkpointed churn rounds).
#: The store dwarfs the churn (≥ 10×) — the regime where a full-snapshot
#: fold pays for the whole store while a delta pays only for the churn.
PARAMS = {
    "default": (4_000, 100, 6),
    "paper": (20_000, 500, 6),
}


def _params() -> tuple[int, int, int]:
    return PARAMS["paper"] if BENCH_SCALE == "paper" else PARAMS["default"]


def make_schema() -> Database:
    database = Database()
    database.create_table("Rows", ["id", "payload"], key=["id"])
    return database


def _row(i: int) -> tuple[int, str]:
    return (i, f"payload-{i:08d}")


def _bulk_load(database: Database, rows: int) -> None:
    with database.begin() as txn:
        for i in range(rows):
            txn.insert("Rows", _row(i))


def _churn_round(database: Database, round_index: int, churn: int, rows: int) -> None:
    """Delete the oldest ``churn`` live rows, insert ``churn`` fresh ones."""
    doomed = range(round_index * churn, (round_index + 1) * churn)
    with database.begin() as txn:
        for i in doomed:
            txn.delete("Rows", _row(i))
            txn.insert("Rows", _row(rows + i))


def fingerprint(database: Database) -> dict:
    return {
        name: sorted(rows) for name, rows in database.snapshot().items()
    }


#: Windowed mini-run shape: concurrent committers sharing group syncs.
WINDOWED_THREADS = 4
WINDOWED_COMMITS_EACH = 25
WINDOWED_WINDOW_S = 0.01


def _measure_windowed_fsyncs(directory) -> tuple[float, int]:
    """Commits-per-fsync under a group-fsync window.

    A small engine-level run — ``WINDOWED_THREADS`` committers, each
    appending ``WINDOWED_COMMITS_EACH`` single-insert transactions against
    a windowed ``fsync=True`` engine — returning ``(fsyncs_per_commit,
    commits)`` from the engine's own counters, read before ``close()``
    adds its final eager sync.
    """
    config = DurabilityConfig(
        mode="segmented",
        directory=str(directory),
        fsync=True,
        fsync_window_s=WINDOWED_WINDOW_S,
        segment_max_records=10_000,
    )
    database = make_schema()
    engine = SegmentedWriteAheadLog(directory, config)
    engine.adopt(database.wal)
    database.wal = engine

    def committer(base: int) -> None:
        for i in range(WINDOWED_COMMITS_EACH):
            txn = base + i
            engine.append(LogRecordType.BEGIN, txn)
            engine.append(LogRecordType.INSERT, txn, "Rows", _row(txn))
            engine.append(LogRecordType.COMMIT, txn)

    workers = [
        threading.Thread(target=committer, args=(1_000_000 * (t + 1),))
        for t in range(WINDOWED_THREADS)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    commits = WINDOWED_THREADS * WINDOWED_COMMITS_EACH
    fsyncs = engine.statistics.fsyncs
    engine.close()
    return fsyncs / commits, commits


def _emit_durability_json(result: dict) -> None:
    """Merge the durability section into ``BENCH_admission.json``.

    Read-modify-write, mirroring the ``"network"`` emitter: the sharded
    admission benchmark owns the rest of the file and preserves this
    section symmetrically.
    """
    payload = {}
    if BENCH_JSON.exists():
        payload = json.loads(BENCH_JSON.read_text())
    payload["durability"] = {"scale": BENCH_SCALE, "results": [result]}
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")


@pytest.mark.recovery
def test_recovery_and_checkpoint_pause(tmp_path):
    rows, churn, rounds = _params()
    assert rows >= 10 * churn

    # Legacy twin: monolithic JSON-lines log, full-snapshot folds.
    legacy = make_schema()
    sink = FileWalSink(tmp_path / "legacy.wal")
    legacy.wal.attach_sink(sink)

    # Segmented twin: one writer-folded base checkpoint, then deltas for
    # every round; the base the cadence would re-fold mid-run is
    # synthesized by the compaction pass instead (incremental_bases).
    seg_dir = tmp_path / "segments"
    config = DurabilityConfig(
        mode="segmented",
        directory=str(seg_dir),
        base_interval=rounds // 2,
        incremental_bases=True,
    )
    segmented = make_schema()
    engine = SegmentedWriteAheadLog(seg_dir, config)
    engine.adopt(segmented.wal)
    segmented.wal = engine

    for database in (legacy, segmented):
        _bulk_load(database, rows)
        database.checkpoint()  # legacy fold #1 / the segmented base
    for round_index in range(rounds):
        for database in (legacy, segmented):
            _churn_round(database, round_index, churn, rows)
            database.checkpoint()  # full fold again vs. one delta record

    legacy_pause_ms = legacy.wal.max_checkpoint_pause_ms
    stats = engine.statistics
    assert stats.checkpoints_base == 1
    assert stats.checkpoints_delta == rounds

    # Background-style compaction debt is paid before the cold restart;
    # the superseded pre-base segments must actually free disk, and the
    # due base is synthesized off-writer rather than folded by the writer.
    compaction_passes = engine.compact_now()
    assert stats.bytes_reclaimed > 0, "compaction reclaimed nothing"
    assert stats.bases_synthesized >= 1, "no base was synthesized"
    assert stats.checkpoints_base == 1, "the writer folded a second base"
    engine.close()

    fsyncs_per_commit, windowed_commits = _measure_windowed_fsyncs(
        tmp_path / "windowed"
    )
    assert fsyncs_per_commit < 1.0, fsyncs_per_commit

    started = time.perf_counter()
    recovered = recover(seg_dir, make_schema)
    recovery_ms = (time.perf_counter() - started) * 1000.0
    reference = recover_database(make_schema, WriteAheadLog.load(sink.read_text()))
    assert fingerprint(recovered) == fingerprint(reference)
    assert fingerprint(recovered) == fingerprint(segmented)
    recovered.wal.close()

    # The headline claim: with the store ≥ 10× the churn, the delta
    # checkpoint pause lands below the legacy full-snapshot fold.
    assert stats.delta_pause_ms < legacy_pause_ms, (
        stats.delta_pause_ms,
        legacy_pause_ms,
    )

    result = {
        "store_rows": rows,
        "churn_rows": churn,
        "checkpoints": rounds + 1,
        "recovery_ms": round(recovery_ms, 3),
        "max_delta_pause_ms": round(stats.delta_pause_ms, 3),
        "base_pause_ms": round(stats.base_pause_ms, 3),
        "legacy_pause_ms": round(legacy_pause_ms, 3),
        "bytes_reclaimed": stats.bytes_reclaimed,
        "segments_sealed": stats.segments_sealed,
        "compactions": compaction_passes,
        "writer_base_folds": stats.checkpoints_base,
        "bases_synthesized": stats.bases_synthesized,
        "fsyncs_per_commit": round(fsyncs_per_commit, 4),
        "windowed_commits": windowed_commits,
    }
    report(
        "Durability engine (segmented WAL vs. legacy monolithic log)",
        format_table(
            ["store rows", "churn", "delta pause ms", "legacy pause ms", "recovery ms", "bytes reclaimed", "fsyncs/commit"],
            [
                [
                    rows,
                    churn,
                    result["max_delta_pause_ms"],
                    result["legacy_pause_ms"],
                    result["recovery_ms"],
                    result["bytes_reclaimed"],
                    result["fsyncs_per_commit"],
                ]
            ],
        ),
    )
    _emit_durability_json(result)
