"""Flight / seat databases for the travel scenario.

"We artificially generate a database of flights over which the reservation
requests are issued.  Each flight in our database is represented as a set of
seats arranged in rows of three.  Each row has four possible adjacent pairs,
only two of which can be booked simultaneously.  The number of rows per
flight and the number of flights in the database are changed across
experiments.  Appropriate indices are defined for each relation in the
database." (Section 5.2)

Schema:

* ``Available(flight, seat)`` — seats not yet booked; key (flight, seat);
* ``Bookings(passenger, flight, seat)`` — key (flight, seat), so two
  passengers can never hold the same seat;
* ``Adjacent(flight, seat1, seat2)`` — the four ordered adjacency pairs per
  row (A–B, B–A, B–C, C–B for a row A/B/C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.relational.database import Database
from repro.relational.datatypes import DataType
from repro.relational.schema import Column

#: Column letters of a three-seat row.
ROW_LETTERS = ("A", "B", "C")


@dataclass(frozen=True)
class FlightDatabaseSpec:
    """Size parameters of a generated flight database.

    Attributes:
        num_flights: number of flights (paper: 1 for Figures 5/6, 10–100 for
            Figure 7, 40 for Figures 8/9).
        rows_per_flight: seat rows per flight (paper: 34 for Figures 5/6, 50
            elsewhere).
        seats_per_row: fixed at 3 in the paper.
        first_flight_number: flight numbers are consecutive integers
            starting here.
    """

    num_flights: int = 1
    rows_per_flight: int = 34
    seats_per_row: int = 3
    first_flight_number: int = 100

    def __post_init__(self) -> None:
        if self.num_flights < 1 or self.rows_per_flight < 1:
            raise ValueError("a flight database needs at least one flight and one row")
        if self.seats_per_row < 2 or self.seats_per_row > len(ROW_LETTERS):
            raise ValueError("seats_per_row must be 2 or 3")

    # -- derived quantities ---------------------------------------------------

    @property
    def seats_per_flight(self) -> int:
        """Seats on one flight."""
        return self.rows_per_flight * self.seats_per_row

    @property
    def total_seats(self) -> int:
        """Seats across all flights."""
        return self.num_flights * self.seats_per_flight

    @property
    def max_coordinating_users_per_flight(self) -> int:
        """Maximum users per flight that can be seated adjacent to a partner.

        "For a single flight ... with ten rows (10×3 seats), a maximum of
        twenty coordination requests for adjacent seats can be accommodated":
        each three-seat row hosts exactly one adjacent pair (two users).
        """
        return self.rows_per_flight * 2

    @property
    def max_coordinating_users(self) -> int:
        """Maximum coordinating users across all flights."""
        return self.num_flights * self.max_coordinating_users_per_flight

    def flight_numbers(self) -> tuple[int, ...]:
        """The generated flight numbers."""
        return tuple(
            self.first_flight_number + i for i in range(self.num_flights)
        )

    def seat_labels(self) -> tuple[str, ...]:
        """Seat labels of one flight, row-major (``1A``, ``1B``, ...)."""
        return tuple(
            f"{row + 1}{ROW_LETTERS[col]}"
            for row in range(self.rows_per_flight)
            for col in range(self.seats_per_row)
        )

    def adjacency_pairs(self) -> Iterator[tuple[str, str]]:
        """Ordered adjacency pairs of one flight (four per row of three)."""
        for row in range(self.rows_per_flight):
            labels = [
                f"{row + 1}{ROW_LETTERS[col]}" for col in range(self.seats_per_row)
            ]
            for left, right in zip(labels, labels[1:]):
                yield (left, right)
                yield (right, left)


def create_flight_tables(database: Database) -> None:
    """Declare the ``Available`` / ``Bookings`` / ``Adjacent`` schema.

    Secondary indexes mirror the paper's "appropriate indices ... for each
    relation": flight-only lookups on availability and adjacency, and
    passenger lookups on bookings.
    """
    database.create_table(
        "Available",
        [Column("flight", DataType.INTEGER), Column("seat", DataType.TEXT)],
        key=["flight", "seat"],
        indexes=[["flight"]],
    )
    database.create_table(
        "Bookings",
        [
            Column("passenger", DataType.TEXT),
            Column("flight", DataType.INTEGER),
            Column("seat", DataType.TEXT),
        ],
        key=["flight", "seat"],
        indexes=[["passenger"], ["flight"]],
    )
    database.create_table(
        "Adjacent",
        [
            Column("flight", DataType.INTEGER),
            Column("seat1", DataType.TEXT),
            Column("seat2", DataType.TEXT),
        ],
        key=["flight", "seat1", "seat2"],
        indexes=[["flight", "seat1"], ["flight", "seat2"]],
    )


def populate_flights(database: Database, spec: FlightDatabaseSpec) -> None:
    """Fill the flight tables with all-available flights per ``spec``.

    The load runs as one WAL-logged transaction so that crash recovery can
    rebuild the initial state from the log alone.
    """
    with database.begin() as txn:
        for flight in spec.flight_numbers():
            for seat in spec.seat_labels():
                txn.insert("Available", (flight, seat))
            for seat1, seat2 in spec.adjacency_pairs():
                txn.insert("Adjacent", (flight, seat1, seat2))


def build_flight_database(
    spec: FlightDatabaseSpec, database: Database | None = None
) -> Database:
    """Create schema and data in one call; returns the database."""
    database = database or Database()
    create_flight_tables(database)
    populate_flights(database, spec)
    return database


def booked_adjacent_pairs(database: Database) -> set[frozenset[str]]:
    """Pairs of passengers seated adjacently in the final state.

    Used by the experiments to compute coordination percentages
    independently of either system's own bookkeeping.
    """
    bookings = database.table("Bookings")
    adjacent = database.table("Adjacent")
    seat_to_passenger: dict[tuple[int, str], str] = {
        (row["flight"], row["seat"]): row["passenger"] for row in bookings
    }
    pairs: set[frozenset[str]] = set()
    for row in adjacent:
        left = seat_to_passenger.get((row["flight"], row["seat1"]))
        right = seat_to_passenger.get((row["flight"], row["seat2"]))
        if left is not None and right is not None and left != right:
            pairs.add(frozenset((left, right)))
    return pairs
