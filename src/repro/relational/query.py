"""Conjunctive queries over the relational store.

The quantum database's satisfiability checker issues ``LIMIT 1`` conjunctive
queries — a join over the body atoms of a composed resource transaction.
This module defines the query representation; :mod:`repro.relational.planner`
orders the joins and :mod:`repro.relational.executor` evaluates them.

A query is a set of :class:`QueryAtom` (one per referenced relation, with a
term per column: either a :class:`Var` or a constant), an optional extra
:class:`~repro.relational.conditions.Condition` over the variables, a list of
output variables, and an optional ``limit``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.errors import SchemaError
from repro.relational.conditions import Condition


@dataclass(frozen=True)
class Var:
    """A query variable, identified by name.

    The same variable name appearing in several atom positions expresses an
    equi-join between those positions.
    """

    name: str

    def __repr__(self) -> str:
        return f"?{self.name}"


@dataclass(frozen=True)
class QueryAtom:
    """One relational atom of a conjunctive query.

    Attributes:
        table: name of the referenced table.
        terms: one term per column of the table, either a :class:`Var` or a
            constant value.
        negated: when True the atom is an *anti-join*: the query keeps a
            binding only if no row matches the atom under that binding.
            Negated atoms must be *safe*: every variable they use must also
            occur in a positive atom.
    """

    table: str
    terms: tuple[Any, ...]
    negated: bool = False

    def variables(self) -> tuple[Var, ...]:
        """Variables occurring in this atom, in position order (with dups)."""
        return tuple(t for t in self.terms if isinstance(t, Var))

    def variable_names(self) -> frozenset[str]:
        """Names of the distinct variables in this atom."""
        return frozenset(t.name for t in self.terms if isinstance(t, Var))

    def constants(self) -> dict[int, Any]:
        """Mapping of column position → constant for the bound positions."""
        return {i: t for i, t in enumerate(self.terms) if not isinstance(t, Var)}

    def __repr__(self) -> str:
        inner = ", ".join(repr(t) for t in self.terms)
        prefix = "NOT " if self.negated else ""
        return f"{prefix}{self.table}({inner})"


@dataclass
class ConjunctiveQuery:
    """A select-project-join query with optional LIMIT.

    Attributes:
        atoms: the joined relational atoms.
        condition: extra condition over variable names (may reference any
            variable bound by the atoms); ``None`` means TRUE.
        select: variable names to project in the result; ``None`` selects all
            variables bound by the atoms.
        limit: maximum number of bindings to return; ``None`` means all.
    """

    atoms: list[QueryAtom] = field(default_factory=list)
    condition: Condition | None = None
    select: Sequence[str] | None = None
    limit: int | None = None

    def add_atom(
        self, table: str, terms: Sequence[Any], *, negated: bool = False
    ) -> QueryAtom:
        """Append an atom and return it."""
        atom = QueryAtom(table, tuple(terms), negated=negated)
        self.atoms.append(atom)
        return atom

    def variable_names(self) -> frozenset[str]:
        """All distinct variable names bound by positive atoms."""
        names: set[str] = set()
        for atom in self.atoms:
            if not atom.negated:
                names |= atom.variable_names()
        return frozenset(names)

    def validate(self) -> None:
        """Check structural well-formedness (safety of negated atoms)."""
        if not self.atoms:
            raise SchemaError("a conjunctive query needs at least one atom")
        positive_vars = self.variable_names()
        for atom in self.atoms:
            if atom.negated and not atom.variable_names() <= positive_vars:
                unsafe = sorted(atom.variable_names() - positive_vars)
                raise SchemaError(
                    f"negated atom {atom!r} uses unsafe variables {unsafe}"
                )
        if self.select is not None:
            unknown = set(self.select) - set(positive_vars)
            if unknown:
                raise SchemaError(
                    f"projection references unbound variables {sorted(unknown)}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        atoms = " AND ".join(repr(a) for a in self.atoms)
        suffix = f" LIMIT {self.limit}" if self.limit is not None else ""
        return f"<ConjunctiveQuery {atoms}{suffix}>"


@dataclass
class QueryResult:
    """Result of evaluating a conjunctive query.

    Attributes:
        bindings: one mapping per result, from selected variable name to its
            value.
        rows_examined: number of candidate rows the executor touched; used by
            the experiments to report work done independently of wall-clock
            noise.
        plans_considered: number of join orders the planner scored.
    """

    bindings: list[dict[str, Any]] = field(default_factory=list)
    rows_examined: int = 0
    plans_considered: int = 0

    def __len__(self) -> int:
        return len(self.bindings)

    def __iter__(self):
        return iter(self.bindings)

    def __bool__(self) -> bool:
        return bool(self.bindings)

    def first(self) -> dict[str, Any] | None:
        """The first binding, or None if the result is empty."""
        return self.bindings[0] if self.bindings else None
