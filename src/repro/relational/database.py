"""The Database facade: catalog, queries, DML, transactions, snapshots."""

from __future__ import annotations

import itertools
import time
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import SchemaError, TransactionError, UnknownTableError
from repro.relational.dml import Delete, Insert, Statement, Update
from repro.relational.executor import Executor
from repro.relational.planner import Planner, PlannerConfig
from repro.relational.query import ConjunctiveQuery, QueryResult
from repro.relational.row import Row
from repro.relational.schema import Column, TableSchema
from repro.relational.table import Table
from repro.relational.transaction import Transaction
from repro.relational.wal import WriteAheadLog


class Database:
    """An in-memory relational database.

    This is the extensional store underneath a quantum database: a catalog
    of key-enforced tables, a conjunctive query engine with a bounded-depth
    join planner, single-row and condition-based DML, WAL-backed
    transactions, and whole-database snapshots (used both by recovery tests
    and by the possible-worlds enumeration utilities).

    Args:
        planner_config: join planner configuration.  The default mirrors the
            paper's prototype setup (``optimizer_search_depth = 3``,
            61-atom join limit).
    """

    def __init__(self, planner_config: PlannerConfig | None = None) -> None:
        self._tables: dict[str, Table] = {}
        self.planner_config = planner_config or PlannerConfig()
        self._executor = Executor(Planner(self.planner_config))
        self.wal = WriteAheadLog()
        self._txn_ids = itertools.count(1)
        self._active_transactions: set[int] = set()

    # -- catalog ------------------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: Sequence[Column | str],
        key: Sequence[str] | None = None,
        *,
        indexes: Sequence[Sequence[str]] = (),
    ) -> Table:
        """Create a table and optional secondary indexes.

        Raises:
            SchemaError: if a table with that name already exists.
        """
        if name in self._tables:
            raise SchemaError(f"table {name!r} already exists")
        table = Table(TableSchema(name, columns, key))
        for index_columns in indexes:
            table.create_index(index_columns)
        self._tables[name] = table
        return table

    def drop_table(self, name: str) -> None:
        """Remove a table from the catalog.

        Raises:
            UnknownTableError: if the table does not exist.
        """
        if name not in self._tables:
            raise UnknownTableError(f"unknown table {name!r}")
        del self._tables[name]

    def table(self, name: str) -> Table:
        """Look up a table by name.

        Raises:
            UnknownTableError: if the table does not exist.
        """
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(f"unknown table {name!r}") from None

    def has_table(self, name: str) -> bool:
        """True if the table exists."""
        return name in self._tables

    def table_names(self) -> tuple[str, ...]:
        """Names of all tables, in creation order."""
        return tuple(self._tables)

    def tables(self) -> tuple[Table, ...]:
        """All tables, in creation order."""
        return tuple(self._tables.values())

    # -- queries ------------------------------------------------------------

    def execute(self, query: ConjunctiveQuery) -> QueryResult:
        """Evaluate a conjunctive query."""
        return self._executor.execute(self, query)

    def exists(self, query: ConjunctiveQuery) -> bool:
        """True if ``query`` has at least one answer (a ``LIMIT 1`` probe)."""
        return self._executor.exists(self, query)

    # -- autocommit DML -----------------------------------------------------

    def insert(self, table: str, values: Sequence[Any] | Mapping[str, Any]) -> Row:
        """Insert a row in its own (autocommit) transaction."""
        with self.begin() as txn:
            return txn.insert(table, values)

    def delete(self, table: str, values: Sequence[Any] | Mapping[str, Any]) -> Row:
        """Delete a row in its own (autocommit) transaction."""
        with self.begin() as txn:
            return txn.delete(table, values)

    def apply(self, statements: Statement | Iterable[Statement]) -> list[Row]:
        """Apply one or many statements atomically."""
        if isinstance(statements, (Insert, Delete, Update)):
            statements = [statements]
        affected: list[Row] = []
        with self.begin() as txn:
            for statement in statements:
                affected.extend(txn.apply(statement))
        return affected

    # -- transactions -------------------------------------------------------

    def begin(self) -> Transaction:
        """Start a new transaction."""
        transaction_id = next(self._txn_ids)
        self._active_transactions.add(transaction_id)
        return Transaction(self, transaction_id, self.wal)

    def _transaction_finished(self, transaction_id: int) -> None:
        """Bookkeeping callback from :meth:`Transaction.commit` / ``abort``."""
        self._active_transactions.discard(transaction_id)

    # -- snapshots ----------------------------------------------------------

    def snapshot(self) -> dict[str, list[tuple[Any, ...]]]:
        """Return the full extensional state as plain value tuples."""
        return {name: table.snapshot() for name, table in self._tables.items()}

    def checkpoint(self) -> None:
        """Checkpoint the WAL, bounding recovery replay work.

        With the monolithic log (and for the segmented engine's periodic
        base checkpoints) this folds the log into one record holding a full
        snapshot — an O(store) pause.  When the attached log asks for a
        delta checkpoint instead (:meth:`WriteAheadLog.wants_delta_checkpoint`,
        true for :class:`repro.storage.SegmentedWriteAheadLog` between base
        checkpoints), no snapshot is built at all: the log folds only its
        internally tracked dirty set, so the pause is proportional to the
        churn since the previous checkpoint, not to store size.  Either way
        the observed pause is reported to the log for the durability
        statistics and the recovery benchmark's pause gate.

        The session layer calls this during graceful shutdown (see
        :meth:`repro.server.QuantumServer.shutdown`); long-running servers
        may also call it periodically.

        Raises:
            TransactionError: if any transaction is still active — tables
                hold uncommitted effects immediately (undo lives in memory),
                so a snapshot taken now would bake those effects in while
                discarding the log records that mark them uncommitted.
        """
        if self._active_transactions:
            raise TransactionError(
                "cannot checkpoint while transactions are active: "
                f"{sorted(self._active_transactions)}"
            )
        started = time.perf_counter()
        delta = self.wal.wants_delta_checkpoint()
        if delta:
            self.wal.checkpoint_delta()
        else:
            self.wal.checkpoint(self.snapshot())
        pause_ms = (time.perf_counter() - started) * 1000.0
        self.wal.note_checkpoint_pause(pause_ms, delta=delta)

    def restore(self, snapshot: Mapping[str, Iterable[Sequence[Any]]]) -> None:
        """Replace table contents from a :meth:`snapshot` (schemas must exist)."""
        for name, rows in snapshot.items():
            self.table(name).restore(rows)

    def copy(self) -> "Database":
        """Deep copy: same schemas and contents, fresh WAL.

        Used by the possible-worlds utilities, which fork the database for
        each candidate grounding.
        """
        clone = Database(self.planner_config)
        for name, table in self._tables.items():
            clone._tables[name] = table.copy()
        return clone

    def row_count(self) -> int:
        """Total number of rows across all tables."""
        return sum(len(table) for table in self._tables.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{name}[{len(t)}]" for name, t in self._tables.items())
        return f"<Database {parts}>"
