"""Relational atoms.

An atom is a relation name applied to a tuple of terms, e.g.
``Available(f1, s1)`` or ``Bookings('Goofy', f1, s2)``.  Atoms carry two
pieces of metadata from the resource-transaction syntax:

* ``kind`` distinguishes plain body atoms from the ``+`` (insert) and ``-``
  (delete) atoms of the update portion;
* ``optional`` marks body atoms written under ``OPTIONAL`` (soft
  preferences), which the system tries to satisfy at grounding time but
  never lets block a commit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.errors import LogicError
from repro.logic.terms import Constant, Term, Variable, as_term


class AtomKind(enum.Enum):
    """Role an atom plays within a resource transaction."""

    BODY = "BODY"
    INSERT = "INSERT"
    DELETE = "DELETE"


@dataclass(frozen=True)
class Atom:
    """A relational atom ``relation(term, term, ...)``.

    Attributes:
        relation: relation (table) name.
        terms: the argument terms.
        kind: BODY, INSERT or DELETE.
        optional: True for body atoms under OPTIONAL.
    """

    relation: str
    terms: tuple[Term, ...]
    kind: AtomKind = AtomKind.BODY
    optional: bool = False

    def __post_init__(self) -> None:
        if not self.relation:
            raise LogicError("atom relation name must be non-empty")
        if self.optional and self.kind is not AtomKind.BODY:
            raise LogicError("only body atoms can be optional")
        coerced = tuple(as_term(t) for t in self.terms)
        object.__setattr__(self, "terms", coerced)

    # -- constructors -------------------------------------------------------

    @classmethod
    def body(
        cls, relation: str, terms: Sequence[Any], *, optional: bool = False
    ) -> "Atom":
        """Build a body atom (optionally marked OPTIONAL)."""
        return cls(relation, tuple(terms), AtomKind.BODY, optional)

    @classmethod
    def insert(cls, relation: str, terms: Sequence[Any]) -> "Atom":
        """Build a ``+relation(...)`` update atom."""
        return cls(relation, tuple(terms), AtomKind.INSERT)

    @classmethod
    def delete(cls, relation: str, terms: Sequence[Any]) -> "Atom":
        """Build a ``-relation(...)`` update atom."""
        return cls(relation, tuple(terms), AtomKind.DELETE)

    # -- introspection ------------------------------------------------------

    @property
    def arity(self) -> int:
        """Number of argument terms."""
        return len(self.terms)

    def variables(self) -> frozenset[Variable]:
        """Distinct variables appearing in the atom."""
        return frozenset(t for t in self.terms if isinstance(t, Variable))

    def constants(self) -> frozenset[Constant]:
        """Distinct constants appearing in the atom."""
        return frozenset(t for t in self.terms if isinstance(t, Constant))

    def is_ground(self) -> bool:
        """True if the atom contains no variables."""
        return not self.variables()

    def ground_values(self) -> tuple[Any, ...]:
        """Values of a ground atom's terms.

        Raises:
            LogicError: if the atom still contains variables.
        """
        if not self.is_ground():
            raise LogicError(f"atom {self} is not ground")
        return tuple(t.value for t in self.terms)  # type: ignore[union-attr]

    def with_kind(self, kind: AtomKind) -> "Atom":
        """Copy of the atom with a different kind (optional flag dropped for updates)."""
        optional = self.optional if kind is AtomKind.BODY else False
        return Atom(self.relation, self.terms, kind, optional)

    def as_body(self) -> "Atom":
        """Copy of the atom viewed as a plain body atom."""
        return Atom(self.relation, self.terms, AtomKind.BODY, False)

    def rename_variables(self, suffix: str) -> "Atom":
        """Copy with every variable renamed by appending ``suffix``.

        Used to keep the variable namespaces of distinct transactions
        disjoint before composition (the proof of Lemma 3.4 assumes
        ``Var1 ∩ Var2 = ∅``).
        """
        terms = tuple(
            t.rename(suffix) if isinstance(t, Variable) else t for t in self.terms
        )
        return Atom(self.relation, terms, self.kind, self.optional)

    # -- presentation -------------------------------------------------------

    def __repr__(self) -> str:
        prefix = {AtomKind.BODY: "", AtomKind.INSERT: "+", AtomKind.DELETE: "-"}[
            self.kind
        ]
        inner = ", ".join(repr(t) for t in self.terms)
        text = f"{prefix}{self.relation}({inner})"
        if self.optional:
            text = f"[{text}]"
        return text


def atoms_variables(atoms: Iterable[Atom]) -> frozenset[Variable]:
    """Union of the variables of a collection of atoms."""
    result: set[Variable] = set()
    for atom in atoms:
        result |= atom.variables()
    return frozenset(result)
