"""Session-layer coverage: semantics, concurrency, cancellation, shutdown.

The load-bearing properties:

* admission through concurrent sessions makes decisions *identical* to the
  synchronous path replayed in the server's admission order — including
  the fast≡slow equivalence (witness cache on vs. off);
* cancelling a commit mid-flight leaves the database consistent: either
  the transaction never entered the system, or its commit stands with all
  durability bookkeeping intact;
* graceful shutdown drains the queue, flushes the WAL into a snapshot
  checkpoint, and the checkpointed log recovers the full quantum state.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.parser import parse_transaction
from repro.core.quantum_database import QuantumConfig, QuantumDatabase
from repro.core.recovery import PendingTransactionStore
from repro.errors import QuantumError
from repro.relational.recovery import recover_database
from repro.relational.wal import FileWalSink, LogRecordType, WriteAheadLog
from repro.server import QuantumServer, ServerConfig
from repro.workloads.arrival_orders import ArrivalOrder
from repro.workloads.entangled_workload import generate_workload
from repro.workloads.flights import FlightDatabaseSpec, build_flight_database

SPEC = FlightDatabaseSpec(num_flights=2, rows_per_flight=3)


def make_qdb(witness_cache: bool = True, k: int = 4) -> QuantumDatabase:
    return QuantumDatabase(
        build_flight_database(SPEC),
        QuantumConfig(k=k, witness_cache=witness_cache),
    )


def booking(name: str, flight: int | None = None) -> str:
    pin = str(flight) if flight is not None else "?f"
    return (
        f"-Available({pin}, ?s), +Bookings('{name}', {pin}, ?s)"
        f" :-1 Available({pin}, ?s)"
    )


def record_admission_order(qdb: QuantumDatabase) -> list:
    """Wrap ``commit_batch`` so the test sees the writer's admission order."""
    admitted: list = []
    original = qdb.commit_batch

    def recording(transactions, **kwargs):
        admitted.extend(transactions)
        return original(transactions, **kwargs)

    qdb.commit_batch = recording  # type: ignore[method-assign]
    return admitted


class TestRoundTrip:
    def test_commit_ground_read(self):
        async def main():
            qdb = make_qdb()
            async with QuantumServer(qdb) as server:
                async with server.session(client="Mickey") as session:
                    result = await session.commit(booking("Mickey"))
                    assert result.committed and result.pending
                    assert result.session_sequence == 1
                    waiter = session.on_grounding(result.transaction_id)
                    record = await session.check_in(result.transaction_id)
                    assert record.valuation["s"]
                    assert (await waiter).transaction_id == result.transaction_id
                    rows = await session.read(
                        "Bookings", ["Mickey", None, None]
                    )
                    assert len(rows) == 1
                    # Read results are isolated copies.
                    rows[0]["_1"] = "mutated"
                    again = await session.read("Bookings", ["Mickey", None, None])
                    assert again[0]["_1"] != "mutated"
                    stats = session.statistics
                    assert stats.submitted == stats.accepted == 1
                    assert stats.reads == 2
                    assert stats.grounding_events == 1

        asyncio.run(main())

    def test_rejection_is_reported_not_raised(self):
        async def main():
            qdb = make_qdb()
            async with QuantumServer(qdb) as server:
                async with server.session() as session:
                    seats = SPEC.seats_per_flight
                    results = [
                        await session.commit(booking(f"u{i}", flight=SPEC.first_flight_number))
                        for i in range(seats + 1)
                    ]
                    assert [r.committed for r in results] == [True] * seats + [False]
                    assert results[-1].rejection_reason
                    assert session.statistics.rejected == 1

        asyncio.run(main())

    def test_on_grounding_by_relation_and_predicate(self):
        async def main():
            qdb = make_qdb()
            async with QuantumServer(qdb) as server:
                async with server.session() as session:
                    by_relation = session.on_grounding("Bookings")
                    by_predicate = session.on_grounding(
                        lambda record: record.valuation.get("s") is not None
                    )
                    result = await session.commit(booking("Minnie"))
                    await session.ground([result.transaction_id])
                    assert (await by_relation).transaction_id == result.transaction_id
                    assert (await by_predicate).transaction_id == result.transaction_id

        asyncio.run(main())

    def test_check_in_returns_the_requested_transaction(self):
        """Grounding a target may drag its partition prefix along; check_in
        must return the requested record, not the prefix's first."""

        async def main():
            qdb = make_qdb()
            flight = SPEC.first_flight_number
            async with QuantumServer(qdb) as server:
                async with server.session() as session:
                    first = await session.commit(booking("first", flight))
                    second = await session.commit(booking("second", flight))
                    record = await session.check_in(second.transaction_id)
                    assert record is not None
                    assert record.transaction_id == second.transaction_id
                    assert first.transaction_id != second.transaction_id

        asyncio.run(main())

    def test_commit_batch_pass_through_matches_sequential(self):
        texts = [booking(f"u{i}") for i in range(4)]

        async def through_server():
            qdb = make_qdb()
            async with QuantumServer(qdb) as server:
                async with server.session() as session:
                    results = await session.commit_batch(texts)
                    assert session.statistics.batches == 1
                    return [r.committed for r in results]

        sync_qdb = make_qdb()
        sync_decisions = [sync_qdb.execute(t).committed for t in texts]
        assert asyncio.run(through_server()) == sync_decisions


class TestConcurrentEquivalence:
    """Concurrent commits to disjoint partitions ≡ the synchronous path."""

    @staticmethod
    async def run_clients(server: QuantumServer, streams: list[list]) -> dict[int, bool]:
        decisions: dict[int, bool] = {}

        async def client(index: int, stream: list) -> None:
            async with server.session(client=f"client{index}") as session:
                for transaction in stream:
                    result = await session.commit(transaction)
                    decisions[result.transaction_id] = result.committed

        await asyncio.gather(
            *(client(i, stream) for i, stream in enumerate(streams))
        )
        return decisions

    @staticmethod
    def streams(clients: int, transactions: list) -> list[list]:
        return [transactions[i::clients] for i in range(clients)]

    @staticmethod
    def workload_transactions() -> list:
        return list(generate_workload(SPEC, ArrivalOrder.RANDOM, seed=7).transactions)

    def run_concurrent(
        self, witness_cache: bool, transactions: list
    ) -> tuple[dict[int, bool], list]:
        async def main():
            qdb = make_qdb(witness_cache=witness_cache)
            admitted = record_admission_order(qdb)
            async with QuantumServer(qdb) as server:
                decisions = await self.run_clients(
                    server, self.streams(4, transactions)
                )
                assert qdb.pending_count == qdb.state.pending_count()
            return decisions, admitted

        return asyncio.run(main())

    def test_decisions_match_synchronous_replay(self):
        decisions, admitted = self.run_concurrent(
            witness_cache=True, transactions=self.workload_transactions()
        )
        assert len(admitted) == len(decisions)
        replay = make_qdb(witness_cache=True)
        for transaction in admitted:
            result = replay.execute(transaction)
            assert result.committed == decisions[transaction.transaction_id]

    def test_fast_slow_equivalence_through_sessions(self):
        transactions = self.workload_transactions()
        fast, _admitted_fast = self.run_concurrent(
            witness_cache=True, transactions=transactions
        )
        slow, _admitted_slow = self.run_concurrent(
            witness_cache=False, transactions=transactions
        )
        # Same per-transaction decisions regardless of the witness cache:
        # the fast path changes search effort, never semantics.  (Each run
        # may interleave arrivals differently, but per-partition streams
        # are identical per session, and partitions are disjoint flights.)
        assert fast == slow

    def test_executor_ground_all_matches_serial(self):
        transactions = self.workload_transactions()

        async def main():
            qdb = make_qdb()
            async with QuantumServer(qdb) as server:
                decisions = await self.run_clients(
                    server, self.streams(4, transactions)
                )
                records = await server.ground_all()
                assert qdb.pending_count == 0
                inline = set(qdb.state.grounded_results)
                return decisions, {r.transaction_id for r in records}, inline

        decisions, grounded, inline = asyncio.run(main())
        accepted = {tid for tid, ok in decisions.items() if ok}
        # Every accepted transaction ends up grounded (inline partner/k-bound
        # groundings plus the executor-planned ground_all), none twice.
        assert inline == accepted
        assert grounded <= accepted


class TestCancellation:
    def test_cancel_before_admission_leaves_db_consistent(self):
        async def main():
            qdb = make_qdb()
            async with QuantumServer(qdb) as server:
                session = server.session(client="canceller")
                tasks = [
                    asyncio.create_task(session.commit(booking(f"u{i}")))
                    for i in range(6)
                ]
                # One scheduling round lets every commit enqueue its work
                # item (the writer wakes up only after this coroutine
                # yields again), so the cancellations strike while the
                # items sit in the admission queue — mid-commit.
                await asyncio.sleep(0)
                for task in tasks[::2]:
                    task.cancel()
                settled = await asyncio.gather(*tasks, return_exceptions=True)
                cancelled = [r for r in settled if isinstance(r, asyncio.CancelledError)]
                admitted = [r for r in settled if not isinstance(r, BaseException)]
                assert len(cancelled) == 3 and len(admitted) == 3
                assert all(r.committed for r in admitted)
                # Consistency: the pending store mirrors the in-memory
                # pending set exactly; cancelled transactions left no trace.
                pending_ids = {
                    e.transaction_id for e in qdb.state.pending_transactions()
                }
                assert qdb.pending_store.pending_ids() == pending_ids
                admitted_ids = {r.transaction_id for r in admitted}
                assert pending_ids <= admitted_ids
                assert server.statistics.cancelled_before_admission == 3
                assert qdb.state.statistics.admitted == 3
                # The database still works: later commits and groundings run.
                follow_up = await session.commit(booking("after"))
                assert follow_up.committed
                await server.ground_all()
                assert qdb.pending_count == 0

        asyncio.run(main())


class TestShutdownAndRecovery:
    def test_shutdown_rejects_new_work_but_drains_queue(self):
        async def main():
            qdb = make_qdb()
            server = QuantumServer(qdb)
            await server.start()
            session = server.session()
            task = asyncio.create_task(session.commit(booking("drained")))
            await asyncio.sleep(0)  # let the item enqueue
            await server.shutdown()
            result = await task  # enqueued before shutdown → completed
            assert result.committed
            with pytest.raises(QuantumError):
                await session.commit(booking("rejected"))
            with pytest.raises(QuantumError):
                server.session()

        asyncio.run(main())

    def test_on_grounding_after_shutdown_raises_instead_of_hanging(self):
        async def main():
            qdb = make_qdb()
            server = QuantumServer(qdb)
            await server.start()
            session = server.session()
            result = await session.commit(booking("early"))
            await server.shutdown()
            with pytest.raises(QuantumError):
                session.on_grounding(result.transaction_id)
            # The database outlives the server: hooks are restored, so
            # synchronous use keeps working without the dead server.
            assert qdb.state.cache.search.observer is None
            qdb.ground_all()
            assert qdb.pending_count == 0

        asyncio.run(main())

    def test_start_refuses_to_overwrite_existing_wal_file(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_text('{"lsn": 1, "type": "COMMIT", "txn": 1, '
                        '"table": null, "values": null}\n')

        async def main():
            server = QuantumServer(make_qdb(), ServerConfig(wal_path=str(path)))
            with pytest.raises(QuantumError):
                await server.start()

        asyncio.run(main())
        # The durable log is untouched by the refused start.
        assert "COMMIT" in path.read_text()

    def test_shutdown_checkpoints_wal(self, tmp_path):
        async def main():
            qdb = make_qdb()
            config = ServerConfig(wal_path=str(tmp_path / "wal.jsonl"))
            async with QuantumServer(qdb, config) as server:
                async with server.session() as session:
                    await session.commit(booking("Mickey"))
            records = qdb.database.wal.records()
            assert [r.record_type for r in records] == [LogRecordType.CHECKPOINT]
            assert records[0].snapshot is not None
            return str(tmp_path / "wal.jsonl")

        path = asyncio.run(main())
        # The durable sink holds exactly the checkpoint record too.
        sink_log = WriteAheadLog.load(FileWalSink(path).read_text())
        assert [r.record_type for r in sink_log.records()] == [
            LogRecordType.CHECKPOINT
        ]

    def test_recovery_from_checkpointed_wal(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")

        async def main():
            qdb = make_qdb()
            config = ServerConfig(wal_path=path)
            async with QuantumServer(qdb, config) as server:
                async with server.session() as session:
                    results = [
                        await session.commit(booking(f"u{i}")) for i in range(3)
                    ]
            return qdb, {r.transaction_id for r in results}

        old_qdb, committed_ids = asyncio.run(main())
        pending_before = old_qdb.pending_store.pending_ids()
        assert pending_before  # still in superposition at shutdown

        # "Crash": rebuild everything from the durable sink alone.  The
        # schema factory declares the catalog (including the pending table);
        # the checkpoint snapshot then replaces every table's contents.
        def schema_factory():
            database = build_flight_database(SPEC)
            PendingTransactionStore(database)
            return database

        survived = WriteAheadLog.load(FileWalSink(path).read_text())
        database = recover_database(schema_factory, survived)
        recovered = QuantumDatabase.recover(database, QuantumConfig(k=4))
        assert recovered.pending_store.pending_ids() == pending_before
        assert {
            e.transaction_id for e in recovered.state.pending_transactions()
        } == pending_before
        # Sequence numbering resumes after the persisted high-water mark.
        sequences = [e.sequence for e in recovered.state.pending_transactions()]
        new_entry = recovered.state.admit(parse_transaction(booking("later")))
        assert new_entry.sequence > max(sequences)
        # And the recovered state still grounds consistently.
        recovered.ground_all()
        assert recovered.pending_count == 0


class TestServerStatistics:
    def test_group_commit_and_counters(self):
        async def main():
            qdb = make_qdb()
            async with QuantumServer(qdb) as server:
                streams = [
                    [booking(f"c{i}_{j}") for j in range(3)] for i in range(4)
                ]

                async def client(stream):
                    async with server.session() as session:
                        for text in stream:
                            await session.commit(text)

                await asyncio.gather(*(client(s) for s in streams))
                stats = server.statistics
                assert stats.commits == 12
                assert stats.commit_runs <= stats.commits
                assert stats.max_commit_run >= 2  # concurrency did group up
                assert stats.searches_observed > 0
                report = server.statistics_report()
                assert report["server.commits"] == 12
                assert "state.admitted" in report

        asyncio.run(main())


class TestStartupValidation:
    def test_failed_start_leaves_server_unstarted_and_retryable(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_text('{"lsn": 1, "type": "COMMIT", "txn": 1, '
                        '"table": null, "values": null}\n')

        async def main():
            server = QuantumServer(make_qdb(), ServerConfig(wal_path=str(path)))
            with pytest.raises(QuantumError):
                await server.start()
            # Nothing half-started: a session cannot enqueue unprocessable
            # work against a server with no writer.
            with pytest.raises(QuantumError):
                await server.session().commit(booking("nobody"))
            # A retry with a fixed configuration succeeds.
            server.config = ServerConfig()
            await server.start()
            try:
                result = await server.session().commit(booking("works"))
                assert result.committed
            finally:
                await server.shutdown()

        asyncio.run(main())
