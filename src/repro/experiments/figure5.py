"""Figure 5 — cumulative execution time per arrival order.

The paper runs 102 entangled transactions against a single flight with 102
seats (34 rows), k = 61, for the four arrival orders of Table 1, plus the
intelligent-social baseline under the Random order, and plots the cumulative
execution time.  Expected shape:

* Alternate ≈ IS (at most one transaction ever pending);
* In Order and Reverse Order substantially slower, with a steep slope in the
  first half that flattens once partners start arriving;
* Random shows a small, roughly constant per-transaction overhead over IS.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.metrics import RunResult
from repro.experiments.report import downsample, format_series, print_report
from repro.experiments.runner import run_is_entangled, run_quantum_entangled
from repro.relational.planner import MYSQL_JOIN_LIMIT
from repro.workloads.arrival_orders import ArrivalOrder
from repro.workloads.entangled_workload import generate_workload
from repro.workloads.flights import FlightDatabaseSpec


@dataclass
class Figure5Result:
    """All series of Figure 5.

    Attributes:
        quantum: per arrival order, the quantum database run.
        intelligent_social: the IS baseline under the Random order.
    """

    quantum: dict[ArrivalOrder, RunResult] = field(default_factory=dict)
    intelligent_social: RunResult | None = None

    def cumulative_series(self) -> dict[str, list[float]]:
        """Label → cumulative time series, for plotting or inspection."""
        series = {
            order.value: result.cumulative_times()
            for order, result in self.quantum.items()
        }
        if self.intelligent_social is not None:
            series["Random IS"] = self.intelligent_social.cumulative_times()
        return series


def run_figure5(
    spec: FlightDatabaseSpec | None = None,
    *,
    k: int = MYSQL_JOIN_LIMIT,
    seed: int = 0,
) -> Figure5Result:
    """Run the Figure 5 experiment."""
    spec = spec or default_parameters()
    result = Figure5Result()
    for order in ArrivalOrder:
        workload = generate_workload(spec, order, seed=seed)
        result.quantum[order] = run_quantum_entangled(
            workload, k=k, label=order.value
        )
    random_workload = generate_workload(spec, ArrivalOrder.RANDOM, seed=seed)
    result.intelligent_social = run_is_entangled(random_workload, label="Random IS")
    return result


def default_parameters() -> FlightDatabaseSpec:
    """Scaled-down default: 1 flight, 10 rows (30 seats, 30 transactions)."""
    return FlightDatabaseSpec(num_flights=1, rows_per_flight=10)


def paper_parameters() -> FlightDatabaseSpec:
    """The paper's sizing: 1 flight, 34 rows (102 seats, 102 transactions)."""
    return FlightDatabaseSpec(num_flights=1, rows_per_flight=34)


def main(spec: FlightDatabaseSpec | None = None, *, k: int = MYSQL_JOIN_LIMIT) -> Figure5Result:
    """Run and print Figure 5's series."""
    result = run_figure5(spec, k=k)
    blocks = []
    for label, series in result.cumulative_series().items():
        total = series[-1] if series else 0.0
        points = downsample(series, points=10)
        blocks.append(
            format_series(
                f"{label}: total {total * 1000.0:.1f} ms (cumulative ms by txn index)",
                [(index, value * 1000.0) for index, value in points],
                precision=1,
            )
        )
    print_report(
        "Figure 5: cumulative transaction execution time per arrival order",
        "\n\n".join(blocks),
    )
    return result


if __name__ == "__main__":  # pragma: no cover - manual invocation
    main()
