"""Tests for the experiment harnesses (tiny parameterisations).

These tests check the *shape* of each reproduced figure/table on very small
workloads: who wins, which direction the trends go.  The benchmark suite
(`benchmarks/`) runs the same harnesses at larger, paper-shaped sizes.
"""

from __future__ import annotations

import pytest

from repro.experiments import figure5, figure6, figure7, figure8, figure9, table1, table2
from repro.experiments.figure7 import ScalabilityParameters
from repro.experiments.figure8 import MixedParameters
from repro.experiments.metrics import RunResult, cumulative
from repro.experiments.report import downsample, format_series, format_table
from repro.experiments.runner import run_is_entangled, run_quantum_entangled
from repro.workloads.arrival_orders import ArrivalOrder
from repro.workloads.entangled_workload import generate_workload
from repro.workloads.flights import FlightDatabaseSpec

#: One flight, four rows — 12 seats, 12 transactions.  Big enough to show the
#: trends, small enough for the unit-test suite.
TINY = FlightDatabaseSpec(num_flights=1, rows_per_flight=4)


class TestMetricsAndReport:
    def test_cumulative(self):
        assert cumulative([1.0, 2.0, 3.0]) == [1.0, 3.0, 6.0]

    def test_run_result_aggregates(self):
        result = RunResult(label="x", op_times=[0.5, 0.5])
        assert result.total_time == 1.0
        assert result.mean_op_time() == 0.5
        assert result.cumulative_times() == [0.5, 1.0]

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 3.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "2.500" in text

    def test_downsample(self):
        series = list(range(100))
        points = downsample([float(v) for v in series], points=10)
        assert len(points) == 10
        assert points[-1][0] == 100

    def test_format_series(self):
        assert "title" in format_series("title", [(1, 2.0)])


class TestRunner:
    def test_quantum_and_is_runs_complete(self):
        workload = generate_workload(TINY, ArrivalOrder.RANDOM, seed=1)
        quantum = run_quantum_entangled(workload, k=8)
        baseline = run_is_entangled(workload)
        assert quantum.admitted == len(workload)
        assert baseline.admitted == len(workload)
        assert len(quantum.op_times) == len(workload)
        assert 0 <= quantum.coordination_percentage <= 100
        assert quantum.max_possible == workload.max_possible_coordinations


class TestFigure5And6Shapes:
    @pytest.fixture(scope="class")
    def fig6(self):
        return figure6.run_figure6(TINY, k=61, seed=2)

    def test_quantum_reaches_full_coordination(self, fig6):
        for order, result in fig6.quantum.items():
            assert result.coordination_percentage == 100.0, order

    def test_is_never_beats_quantum_and_loses_somewhere(self, fig6):
        # At this tiny scale IS can get lucky on individual orders, but it
        # never beats the quantum database and loses on at least one order
        # (the gap widens with workload size; see the Figure 6 benchmark).
        for order in ArrivalOrder:
            assert (
                fig6.intelligent_social[order].coordination_percentage
                <= fig6.quantum[order].coordination_percentage
            )
        assert any(
            fig6.intelligent_social[order].coordination_percentage
            < fig6.quantum[order].coordination_percentage
            for order in ArrivalOrder
        )

    def test_is_matches_on_alternate(self, fig6):
        assert fig6.intelligent_social[ArrivalOrder.ALTERNATE].coordination_percentage == 100.0

    def test_figure5_series_shapes(self):
        result = figure5.run_figure5(TINY, k=61, seed=2)
        series = result.cumulative_series()
        assert set(series) == {
            "Alternate",
            "Random",
            "In Order",
            "Reverse Order",
            "Random IS",
        }
        lengths = {len(s) for s in series.values()}
        assert lengths == {len(generate_workload(TINY, ArrivalOrder.RANDOM))}
        # Cumulative series are monotone.
        for values in series.values():
            assert all(b >= a for a, b in zip(values, values[1:]))

    def test_alternate_tracks_is_closely(self):
        result = figure5.run_figure5(TINY, k=61, seed=2)
        alternate = result.quantum[ArrivalOrder.ALTERNATE].extra["search_nodes"]
        in_order = result.quantum[ArrivalOrder.IN_ORDER].extra["search_nodes"]
        # In Order keeps many more transactions pending, so its composed
        # bodies grow and its admissions search many more nodes than
        # Alternate's (the paper's headline performance artifact).  Asserted
        # on the deterministic search-work counter, not wall time, which
        # flaked when the full suite loaded the machine.
        assert in_order > alternate


class TestTable1:
    def test_rows_and_bounds(self):
        rows = table1.run_table1(FlightDatabaseSpec(num_flights=1, rows_per_flight=3))
        assert [row.order for row in rows] == list(ArrivalOrder)
        by_order = {row.order: row for row in rows}
        assert by_order[ArrivalOrder.ALTERNATE].expected_bound == 1
        assert by_order[ArrivalOrder.IN_ORDER].simulated_max_pending >= 4
        # The measured maximum from the real system stays near the simulated
        # bound (it may exceed it by one transient admission).
        for row in rows:
            assert row.measured_max_pending <= row.simulated_max_pending + 1


class TestScalabilityAndTable2:
    @pytest.fixture(scope="class")
    def sweep(self):
        parameters = ScalabilityParameters(
            flight_counts=(1, 2), rows_per_flight=3, ks=(1, 4), seed=0
        )
        return figure7.run_figure7(parameters)

    def test_series_cover_sweep(self, sweep):
        assert set(sweep.labels()) == {"k=1", "k=4", "IS"}
        for label, points in sweep.series.items():
            assert [count for count, _run in points] == [8, 16]

    def test_table2_orders_systems(self, sweep):
        result = table2.table2_from_figure7(sweep)
        rows = result.rows()
        assert rows[-1][0] == "IS"
        averages = dict(rows)
        # Larger k keeps transactions pending longer and coordinates more; at
        # this tiny scale IS can tie the best quantum configuration (the gap
        # appears at benchmark sizes), so only >= is asserted against it.
        assert averages["k=4"] >= averages["k=1"]
        assert averages["k=4"] >= averages["IS"]


class TestMixedWorkloads:
    @pytest.fixture(scope="class")
    def mixed(self):
        parameters = MixedParameters(
            spec=FlightDatabaseSpec(num_flights=1, rows_per_flight=4),
            read_percentages=(0.0, 60.0),
            ks=(8,),
            seed=1,
        )
        return figure8.run_figure8(parameters)

    def test_read_time_grows_with_read_fraction(self, mixed):
        runs = {pct: run for (k, pct), run in mixed.runs.items()}
        assert runs[60.0].extra["read_time"] > runs[0.0].extra["read_time"]

    def test_figure9_coordination_declines_with_reads(self, mixed):
        result = figure9.figure9_from_figure8(mixed)
        series = result.series_for(8)
        assert series[0][1] >= series[-1][1]
        assert series[0][0] == 0.0 and series[-1][0] == 60.0
