"""Tests for the resource-transaction model."""

from __future__ import annotations

import pytest

from repro.core.resource_transaction import ResourceTransaction
from repro.errors import InvalidTransactionError
from repro.logic.atoms import Atom
from repro.logic.substitution import Substitution
from repro.logic.terms import Variable
from repro.relational.dml import Delete, Insert

F, S, S2 = Variable("f"), Variable("s"), Variable("s2")


def mickey() -> ResourceTransaction:
    return ResourceTransaction(
        body=(
            Atom.body("Available", [F, S]),
            Atom.body("Bookings", ["Goofy", F, S2], optional=True),
            Atom.body("Adjacent", [F, S, S2], optional=True),
        ),
        updates=(
            Atom.delete("Available", [F, S]),
            Atom.insert("Bookings", ["Mickey", F, S]),
        ),
        client="Mickey",
        partner="Goofy",
    )


class TestValidation:
    def test_valid_transaction(self):
        txn = mickey()
        assert txn.choose == 1
        assert len(txn.hard_body) == 1
        assert len(txn.optional_body) == 2

    def test_empty_updates_rejected(self):
        with pytest.raises(InvalidTransactionError):
            ResourceTransaction(body=(Atom.body("A", [S]),), updates=())

    def test_range_restriction(self):
        with pytest.raises(InvalidTransactionError, match="range restriction"):
            ResourceTransaction(
                body=(Atom.body("A", [S]),),
                updates=(Atom.insert("B", [S, S2]),),
            )

    def test_body_atom_kind_enforced(self):
        with pytest.raises(InvalidTransactionError):
            ResourceTransaction(
                body=(Atom.insert("A", [S]),),
                updates=(Atom.insert("B", [S]),),
            )

    def test_update_atom_kind_enforced(self):
        with pytest.raises(InvalidTransactionError):
            ResourceTransaction(
                body=(Atom.body("A", [S]),),
                updates=(Atom.body("B", [S]),),
            )

    def test_choose_must_be_one(self):
        with pytest.raises(InvalidTransactionError):
            ResourceTransaction(
                body=(Atom.body("A", [S]),),
                updates=(Atom.insert("B", [S]),),
                choose=3,
            )

    def test_unique_ids_assigned(self):
        assert mickey().transaction_id != mickey().transaction_id


class TestIntrospection:
    def test_inserts_and_deletes(self):
        txn = mickey()
        assert [a.relation for a in txn.inserts] == ["Bookings"]
        assert [a.relation for a in txn.deletes] == ["Available"]

    def test_variables(self):
        txn = mickey()
        assert txn.variables() == {F, S, S2}
        assert txn.hard_variables() == {F, S}

    def test_relations(self):
        assert mickey().relations() == {"Available", "Bookings", "Adjacent"}

    def test_formulas(self):
        txn = mickey()
        assert len(txn.hard_formula().atoms()) == 1
        assert len(txn.full_formula().atoms()) == 3

    def test_rename_variables_preserves_id(self):
        txn = mickey()
        renamed = txn.rename_variables("@9")
        assert renamed.transaction_id == txn.transaction_id
        assert Variable("s@9") in renamed.variables()
        assert renamed.client == "Mickey"

    def test_repr_formats_the_transaction(self):
        """Regression: repr depends on a deferred parser import (circular
        import with repro.core.parser) that a lint sweep once removed."""
        txn = mickey()
        rendered = repr(txn)
        assert f"#{txn.transaction_id}" in rendered
        assert "Available" in rendered and "Bookings" in rendered


class TestGroundUpdates:
    def test_statements_produced_in_order(self):
        txn = mickey()
        statements = txn.ground_updates({"f": 123, "s": "5A"})
        assert statements == [
            Delete("Available", (123, "5A")),
            Insert("Bookings", ("Mickey", 123, "5A")),
        ]

    def test_substitution_accepted(self):
        txn = mickey()
        theta = Substitution({F: 9, S: "1B"})
        statements = txn.ground_updates(theta)
        assert isinstance(statements[0], Delete)
        assert statements[1].values == ("Mickey", 9, "1B")

    def test_incomplete_grounding_rejected(self):
        txn = mickey()
        with pytest.raises(InvalidTransactionError):
            txn.ground_updates({"f": 123})

    def test_satisfied_optionals_counting(self):
        txn = mickey()
        facts = {("Bookings", ("Goofy", 1, "1B")), ("Adjacent", (1, "1A", "1B"))}
        def oracle(rel, values):
            return (rel, values) in facts
        assert txn.satisfied_optionals({"f": 1, "s": "1A", "s2": "1B"}, oracle) == 2
        assert txn.satisfied_optionals({"f": 1, "s": "1C", "s2": "1B"}, oracle) == 1
        # Unbound optional variables count as unsatisfied, not as errors.
        assert txn.satisfied_optionals({"f": 1, "s": "1A"}, oracle) == 0
