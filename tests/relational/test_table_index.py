"""Tests for tables (key enforcement, indexes, lookups, snapshots)."""

from __future__ import annotations

import pytest

from repro.errors import KeyViolationError, MissingRowError, SchemaError
from repro.relational.index import HashIndex
from repro.relational.schema import TableSchema
from repro.relational.table import Table


@pytest.fixture
def bookings() -> Table:
    table = Table(TableSchema("Bookings", ["passenger", "flight", "seat"], key=["flight", "seat"]))
    table.insert(("Mickey", 1, "1A"))
    table.insert(("Goofy", 1, "1B"))
    table.insert(("Donald", 2, "1A"))
    return table


class TestTableBasics:
    def test_insert_and_len(self, bookings):
        assert len(bookings) == 3

    def test_key_violation(self, bookings):
        with pytest.raises(KeyViolationError):
            bookings.insert(("Pluto", 1, "1A"))

    def test_get_by_key(self, bookings):
        row = bookings.get((1, "1B"))
        assert row is not None and row["passenger"] == "Goofy"
        assert bookings.get((9, "9Z")) is None

    def test_contains(self, bookings):
        row = bookings.get((1, "1A"))
        assert row in bookings

    def test_delete(self, bookings):
        bookings.delete(("Mickey", 1, "1A"))
        assert len(bookings) == 2
        assert bookings.get((1, "1A")) is None

    def test_delete_missing(self, bookings):
        with pytest.raises(MissingRowError):
            bookings.delete(("Nobody", 7, "7A"))

    def test_delete_by_key(self, bookings):
        removed = bookings.delete_by_key((2, "1A"))
        assert removed["passenger"] == "Donald"

    def test_insert_mapping(self, bookings):
        bookings.insert({"passenger": "Minnie", "flight": 3, "seat": "2C"})
        assert bookings.get((3, "2C"))["passenger"] == "Minnie"

    def test_clear(self, bookings):
        bookings.clear()
        assert len(bookings) == 0


class TestLookupAndIndexes:
    def test_lookup_without_index_scans(self, bookings):
        rows = list(bookings.lookup(["passenger"], ["Goofy"]))
        assert len(rows) == 1 and rows[0]["seat"] == "1B"

    def test_lookup_with_secondary_index(self, bookings):
        index = bookings.create_index(["flight"])
        assert len(index) == 3
        rows = list(bookings.lookup(["flight"], [1]))
        assert {r["passenger"] for r in rows} == {"Mickey", "Goofy"}

    def test_index_maintained_on_mutation(self, bookings):
        bookings.create_index(["flight"])
        bookings.insert(("Minnie", 1, "1C"))
        bookings.delete(("Mickey", 1, "1A"))
        rows = list(bookings.lookup(["flight"], [1]))
        assert {r["passenger"] for r in rows} == {"Goofy", "Minnie"}

    def test_primary_key_lookup_uses_unique_index(self, bookings):
        rows = list(bookings.lookup(["flight", "seat"], [2, "1A"]))
        assert len(rows) == 1 and rows[0]["passenger"] == "Donald"

    def test_best_index_prefers_more_columns(self, bookings):
        flight_index = bookings.create_index(["flight"])
        best = bookings.best_index(["flight", "seat"])
        assert best is not None and set(best.columns) == {"flight", "seat"}
        assert bookings.best_index(["flight"]) is flight_index
        assert bookings.best_index(["passenger"]) is None

    def test_create_index_idempotent(self, bookings):
        first = bookings.create_index(["flight"])
        second = bookings.create_index(["flight"])
        assert first is second

    def test_unique_index_rejects_duplicates(self):
        schema = TableSchema("T", ["a", "b"], key=["a"])
        index = HashIndex(schema, ["b"], unique=True)
        table = Table(schema)
        index.add(table.make_row((1, "x")))
        with pytest.raises(SchemaError):
            index.add(table.make_row((2, "x")))

    def test_index_covers(self):
        schema = TableSchema("T", ["a", "b"])
        index = HashIndex(schema, ["a"])
        assert index.covers({"a", "b"})
        assert not index.covers({"b"})


class TestSnapshots:
    def test_snapshot_restore_roundtrip(self, bookings):
        snapshot = bookings.snapshot()
        bookings.delete(("Mickey", 1, "1A"))
        bookings.restore(snapshot)
        assert len(bookings) == 3
        assert bookings.get((1, "1A"))["passenger"] == "Mickey"

    def test_copy_is_independent(self, bookings):
        clone = bookings.copy()
        clone.delete(("Mickey", 1, "1A"))
        assert len(bookings) == 3
        assert len(clone) == 2

    def test_copy_preserves_secondary_indexes(self, bookings):
        bookings.create_index(["flight"])
        clone = bookings.copy()
        rows = list(clone.lookup(["flight"], [1]))
        assert len(rows) == 2
