"""WAL ↔ recovery round-trips: crash after a partial transaction.

These tests exercise the full durability loop of
:mod:`repro.relational.wal` and :mod:`repro.relational.recovery`:

* a "crash" is simulated by discarding the live :class:`Database` and
  keeping only the WAL — optionally serialised to JSON lines and parsed
  back, as a real log file would be;
* replay must restore *exactly* the effects of committed transactions: a
  transaction interrupted mid-flight (records written, no COMMIT marker)
  contributes nothing;
* the quantum tier's pending-transactions table rides on the same
  mechanism, so a crash between admission and grounding must restore the
  pending transaction and its guarantee.
"""

from __future__ import annotations

import pytest

from repro.core.quantum_database import QuantumDatabase
from repro.core.recovery import PendingTransactionStore
from repro.relational.database import Database
from repro.relational.recovery import recover_database, replay_into
from repro.relational.wal import FileWalSink, LogRecordType, WriteAheadLog


def make_schema() -> Database:
    database = Database()
    database.create_table("Seats", ["flight", "seat"], key=["flight", "seat"])
    database.create_table(
        "Bookings", ["passenger", "flight", "seat"], key=["flight", "seat"]
    )
    return database


def crash_and_recover(database: Database, *, through_json: bool) -> Database:
    """Drop the live database, keep (optionally serialised) WAL, recover."""
    wal = database.wal
    if through_json:
        wal = WriteAheadLog.load(wal.dump())
    return recover_database(make_schema, wal)


class TestPartialTransactionCrash:
    @pytest.mark.parametrize("through_json", [False, True])
    def test_uncommitted_tail_is_discarded(self, through_json):
        database = make_schema()
        with database.begin() as txn:
            txn.insert("Seats", (1, "1A"))
            txn.insert("Seats", (1, "1B"))
        # Crash strikes mid-transaction: two operations logged, no COMMIT.
        partial = database.begin()
        partial.insert("Bookings", ("Mickey", 1, "1A"))
        partial.delete("Seats", (1, "1A"))

        recovered = crash_and_recover(database, through_json=through_json)
        assert set(recovered.table("Seats").snapshot()) == {(1, "1A"), (1, "1B")}
        assert len(recovered.table("Bookings")) == 0

    @pytest.mark.parametrize("through_json", [False, True])
    def test_committed_prefix_survives_partial_suffix(self, through_json):
        database = make_schema()
        with database.begin() as txn:
            txn.insert("Seats", (1, "1A"))
        with database.begin() as txn:
            txn.insert("Bookings", ("Mickey", 1, "1A"))
            txn.delete("Seats", (1, "1A"))
        partial = database.begin()
        partial.insert("Bookings", ("Goofy", 1, "1B"))  # never commits

        recovered = crash_and_recover(database, through_json=through_json)
        assert set(recovered.table("Bookings").snapshot()) == {("Mickey", 1, "1A")}
        assert len(recovered.table("Seats")) == 0

    def test_aborted_transaction_replays_as_nothing(self):
        database = make_schema()
        txn = database.begin()
        txn.insert("Seats", (1, "1A"))
        txn.abort()
        with database.begin() as committed:
            committed.insert("Seats", (2, "2A"))
        recovered = crash_and_recover(database, through_json=True)
        assert set(recovered.table("Seats").snapshot()) == {(2, "2A")}

    def test_replay_is_deterministic_and_repeatable(self):
        database = make_schema()
        with database.begin() as txn:
            txn.insert("Seats", (1, "1A"))
            txn.insert("Seats", (1, "1B"))
            txn.delete("Seats", (1, "1A"))
        once = crash_and_recover(database, through_json=True)
        twice = crash_and_recover(once, through_json=True)
        assert set(once.table("Seats").snapshot()) == set(
            twice.table("Seats").snapshot()
        )

    def test_recovered_wal_continues_lsn_sequence(self):
        database = make_schema()
        with database.begin() as txn:
            txn.insert("Seats", (1, "1A"))
        recovered = crash_and_recover(database, through_json=True)
        highest_before = max(r.lsn for r in recovered.wal.records())
        recovered.insert("Seats", (1, "1B"))
        fresh = [r for r in recovered.wal.records() if r.lsn > highest_before]
        assert fresh
        assert [r.record_type for r in fresh][-1] is LogRecordType.COMMIT

    def test_replay_into_skips_unfinished_transactions(self):
        wal = WriteAheadLog()
        wal.log_begin(1)
        wal.log_insert(1, "Seats", (1, "1A"))
        wal.log_commit(1)
        wal.log_begin(2)
        wal.log_insert(2, "Seats", (1, "1B"))  # crash before COMMIT
        database = make_schema()
        replay_into(database, wal)
        assert set(database.table("Seats").snapshot()) == {(1, "1A")}


class TestQuantumPendingRoundTrip:
    """The pending-transactions table rides the same WAL round-trip."""

    def quantum_schema(self) -> Database:
        database = Database()
        database.create_table("Available", ["flight", "seat"], key=["flight", "seat"])
        database.create_table(
            "Bookings", ["passenger", "flight", "seat"], key=["flight", "seat"]
        )
        PendingTransactionStore(database)
        return database

    def test_crash_between_admission_and_grounding(self):
        qdb = QuantumDatabase(self.quantum_schema())
        qdb.load_rows("Available", [(7, "1A"), (7, "1B")])
        kept = qdb.execute(
            "-Available(7, ?s), +Bookings('Mickey', 7, ?s) :-1 Available(7, ?s)"
        )
        assert kept.pending

        # Crash: only the JSON form of the WAL survives.
        surviving = WriteAheadLog.load(qdb.database.wal.dump())
        recovered_store = recover_database(self.quantum_schema, surviving)
        recovered = QuantumDatabase.recover(recovered_store, qdb.config)

        assert recovered.pending_count == 1
        assert recovered.state.is_pending(kept.transaction_id)
        record = recovered.check_in(kept.transaction_id)
        assert record is not None and record.valuation["s"] in ("1A", "1B")
        # After grounding, a second crash must preserve the booking and
        # leave nothing pending.
        final = recover_database(
            self.quantum_schema, WriteAheadLog.load(recovered.database.wal.dump())
        )
        requantum = QuantumDatabase.recover(final, qdb.config)
        assert requantum.pending_count == 0
        assert len(requantum.table("Bookings")) == 1

    def test_batch_persistence_is_atomic_in_the_log(self):
        qdb = QuantumDatabase(self.quantum_schema())
        qdb.load_rows("Available", [(7, "1A"), (7, "1B"), (7, "1C")])
        results = qdb.commit_batch(
            [
                "-Available(7, ?s), +Bookings('Mickey', 7, ?s) :-1 Available(7, ?s)",
                "-Available(7, ?s), +Bookings('Goofy', 7, ?s) :-1 Available(7, ?s)",
            ]
        )
        assert all(r.committed for r in results)
        # Both pending rows were made durable under a single commit record.
        pending_inserts = [
            r
            for r in qdb.database.wal.records()
            if r.record_type is LogRecordType.INSERT
            and r.table == "__pending_transactions"
        ]
        assert len(pending_inserts) == 2
        assert len({r.transaction_id for r in pending_inserts}) == 1
        recovered = QuantumDatabase.recover(
            recover_database(
                self.quantum_schema, WriteAheadLog.load(qdb.database.wal.dump())
            ),
            qdb.config,
        )
        assert recovered.pending_count == 2


class TestCheckpoint:
    """Snapshot checkpoints bound the replay tail without losing effects."""

    def test_checkpoint_folds_log_and_recovers_identically(self):
        database = make_schema()
        with database.begin() as txn:
            txn.insert("Seats", (1, "1A"))
            txn.insert("Seats", (1, "1B"))
        with database.begin() as txn:
            txn.delete("Seats", (1, "1A"))
        before = set(database.table("Seats").snapshot())
        assert len(database.wal) > 1

        database.checkpoint()
        records = database.wal.records()
        assert [r.record_type for r in records] == [LogRecordType.CHECKPOINT]
        recovered = crash_and_recover(database, through_json=True)
        assert set(recovered.table("Seats").snapshot()) == before

    def test_post_checkpoint_tail_replays_on_top_of_snapshot(self):
        database = make_schema()
        with database.begin() as txn:
            txn.insert("Seats", (1, "1A"))
        database.checkpoint()
        with database.begin() as txn:
            txn.insert("Seats", (1, "1B"))
        partial = database.begin()
        partial.insert("Seats", (1, "1C"))  # crash before COMMIT

        recovered = crash_and_recover(database, through_json=True)
        assert set(recovered.table("Seats").snapshot()) == {(1, "1A"), (1, "1B")}
        # LSNs keep increasing across the checkpoint boundary.
        lsns = [r.lsn for r in recovered.wal.records()]
        assert lsns == sorted(lsns)

    def test_checkpoint_preserves_pending_transactions(self):
        schema = TestQuantumPendingRoundTrip().quantum_schema
        qdb = QuantumDatabase(schema())
        qdb.load_rows("Available", [(7, "1A"), (7, "1B")])
        result = qdb.execute(
            "-Available(7, ?s), +Bookings('Mickey', 7, ?s) :-1 Available(7, ?s)"
        )
        assert result.pending
        qdb.checkpoint()
        recovered = QuantumDatabase.recover(
            recover_database(schema, WriteAheadLog.load(qdb.database.wal.dump())),
            qdb.config,
        )
        assert recovered.pending_count == 1
        assert recovered.state.is_pending(result.transaction_id)

    def test_group_commit_flushes_sink_per_commit_marker(self, tmp_path):
        # FileWalSink counts its own flushes now (surfaced as
        # durability.flushes in statistics_report).
        sink = FileWalSink(tmp_path / "wal.jsonl")
        database = make_schema()
        database.wal.attach_sink(sink)
        flushes_after_attach = sink.flushes
        with database.begin() as txn:
            txn.insert("Seats", (1, "1A"))
            txn.insert("Seats", (1, "1B"))
            txn.insert("Seats", (1, "1C"))
        # One durability flush for the whole transaction, not one per row.
        assert sink.flushes == flushes_after_attach + 1
        reloaded = WriteAheadLog.load(sink.read_text())
        assert len(reloaded) == len(database.wal)

    def test_checkpoint_refuses_while_transactions_active(self):
        from repro.errors import TransactionError

        database = make_schema()
        txn = database.begin()
        txn.insert("Seats", (1, "1A"))
        with pytest.raises(TransactionError):
            database.checkpoint()
        txn.abort()
        database.checkpoint()  # fine once nothing is in flight
        recovered = crash_and_recover(database, through_json=True)
        assert len(recovered.table("Seats")) == 0  # the abort was honoured
