"""Satisfiability machinery.

The quantum database must maintain the invariant that every composed
transaction body has at least one grounding over the extensional database.
The paper's prototype checks this with ``LIMIT 1`` SQL joins and discusses
SMT solvers as future work.  This subpackage provides:

* :mod:`.grounding` — the workhorse: a backtracking grounding search that
  evaluates a composed-body :class:`~repro.logic.formula.Formula` directly
  against a :class:`~repro.relational.database.Database`, using its indexes
  for candidate generation.  This is the direct analogue of the paper's
  ``LIMIT 1`` probes and is what :class:`~repro.core.quantum_database.QuantumDatabase`
  uses.
* :mod:`.strategy` / :mod:`.bnb` / :mod:`.fastpath` / :mod:`.sampling` /
  :mod:`.undo` — the pluggable admission-search subsystem: a frozen
  :class:`~repro.solver.strategy.AdmissionSearchConfig` selects between
  plain backtracking and a trail-based branch-and-bound searcher (with
  per-shape fast paths and an opt-in seeded sampling estimator), all
  dispatched through :func:`~repro.solver.strategy.dispatch_find_one`
  inside the pure admission function so every execution mode honors the
  strategy bit-identically.
* :mod:`.csp` / :mod:`.propagation` / :mod:`.backtracking` — a generic
  finite-domain constraint-satisfaction solver (AC-3 + MRV backtracking),
  used by the calendar example and the ablation benches.
* :mod:`.sat` / :mod:`.randomsat` — a small DPLL SAT solver and a random
  k-SAT generator, used to reproduce the Section 6 discussion of
  satisfiability phase transitions.
"""

from repro.solver.backtracking import BacktrackingSolver
from repro.solver.bnb import find_one_bnb
from repro.solver.csp import Constraint, CSP, Domain
from repro.solver.fastpath import find_one_fastpath
from repro.solver.grounding import GroundingSearch, GroundingResult
from repro.solver.propagation import ac3, forward_check
from repro.solver.randomsat import random_ksat
from repro.solver.sampling import sample_find_one
from repro.solver.sat import Clause, CNF, DPLLSolver, Literal
from repro.solver.strategy import (
    AdmissionSearchConfig,
    SamplingConfig,
    dispatch_find_one,
)
from repro.solver.undo import Trail, TrailBindings

__all__ = [
    "AdmissionSearchConfig",
    "BacktrackingSolver",
    "CNF",
    "CSP",
    "Clause",
    "Constraint",
    "DPLLSolver",
    "Domain",
    "GroundingResult",
    "GroundingSearch",
    "Literal",
    "SamplingConfig",
    "Trail",
    "TrailBindings",
    "ac3",
    "dispatch_find_one",
    "find_one_bnb",
    "find_one_fastpath",
    "forward_check",
    "random_ksat",
    "sample_find_one",
]
