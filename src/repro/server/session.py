"""Per-client sessions over a :class:`~repro.server.service.QuantumServer`.

A :class:`Session` is one client's view of the quantum database: its own
stream of resource transactions, its own statistics, and awaitable
grounding notifications.  Sessions never touch the database directly —
every operation is enqueued on the server's single-writer admission queue
and the session suspends until the writer has processed it, which is what
gives concurrent clients the exact semantics of the synchronous
:class:`~repro.core.quantum_database.QuantumDatabase` API (see
``docs/architecture.md``, "The session layer").

Read results are isolated: the dictionaries a session receives are fresh
copies produced at the writer's serialization point, so no later commit or
grounding can mutate what a client already holds.

Typical usage::

    server = QuantumServer(qdb)
    async with server:
        async with server.session(client="mickey") as session:
            result = await session.commit(
                "-Available(?f, ?s), +Bookings('Mickey', ?f, ?s)"
                " :-1 Available(?f, ?s)"
            )
            assert result.committed
            grounded = await session.on_grounding(result.transaction_id)
            print(grounded.valuation)
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.core.quantum_database import CommitResult
from repro.core.quantum_state import GroundedTransaction
from repro.core.reads import ReadMode, ReadRequest
from repro.core.resource_transaction import ResourceTransaction
from repro.errors import QuantumError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.server.service import QuantumServer

#: Something :meth:`Session.on_grounding` can wait for: a transaction id,
#: a relation name (any grounding that wrote to it), or a predicate over
#: the grounded record.
GroundingTarget = int | str | Callable[[GroundedTransaction], bool]


@dataclass(frozen=True)
class AdmissionResult:
    """Client-facing outcome of submitting one resource transaction.

    The asynchronous analogue of
    :class:`~repro.core.quantum_database.CommitResult`: ``committed=True``
    is the same guarantee — a consistent value assignment will exist
    whenever grounding is forced — made durable (the pending-transactions
    table write is logged and group-commit flushed) before the session's
    ``commit`` coroutine resumes.

    Attributes:
        transaction: the submitted transaction.
        committed: True if the transaction was admitted.
        pending: True if its values are still deferred.
        grounded: transactions grounded as a side effect of this admission
            (partner pairs, ``k``-bound victims).
        rejection_reason: populated when ``committed`` is False.
        session_sequence: this session's submission counter for the commit.
        method: which admission search decided the submission (``"witness"``,
            ``"fastpath"``, ``"backtracking"``, ``"bnb"``, ``"sampled"``).
        exact: False only when the decision came from the opt-in sampling
            estimator (approximate admission).
    """

    transaction: ResourceTransaction
    committed: bool
    pending: bool = False
    grounded: tuple[GroundedTransaction, ...] = ()
    rejection_reason: str | None = None
    session_sequence: int = 0
    method: str = "backtracking"
    exact: bool = True

    @property
    def transaction_id(self) -> int:
        """Id of the submitted transaction."""
        return self.transaction.transaction_id

    def __bool__(self) -> bool:
        return self.committed

    @classmethod
    def from_commit(
        cls, result: CommitResult, session_sequence: int
    ) -> "AdmissionResult":
        """Wrap a synchronous :class:`CommitResult` for a session."""
        return cls(
            transaction=result.transaction,
            committed=result.committed,
            pending=result.pending,
            grounded=result.grounded,
            rejection_reason=result.rejection_reason,
            session_sequence=session_sequence,
            method=result.method,
            exact=result.exact,
        )


@dataclass
class SessionStatistics:
    """Per-session counters.

    Attributes:
        submitted: resource transactions submitted (commit + batch items).
        accepted / rejected: admission outcomes observed by this session.
        batches: ``commit_batch`` calls.
        reads: read queries answered.
        writes: blind inserts/deletes issued.
        grounding_waits: ``on_grounding`` futures requested.
        grounding_events: grounding notifications delivered.
        cancelled: commits cancelled before the writer admitted them.
        backpressure: submissions refused because the session exceeded its
            queue quota (:class:`~repro.errors.SessionBackpressure`).
        tenant_backpressure: submissions refused because the session's
            tenant exceeded its combined quota
            (:class:`~repro.errors.TenantBackpressure`).
    """

    submitted: int = 0
    accepted: int = 0
    rejected: int = 0
    batches: int = 0
    reads: int = 0
    writes: int = 0
    grounding_waits: int = 0
    grounding_events: int = 0
    cancelled: int = 0
    backpressure: int = 0
    tenant_backpressure: int = 0


class Session:
    """One client's transaction stream over the shared quantum database.

    Created via :meth:`QuantumServer.session`; usable as an async context
    manager.  All methods may be called concurrently with other sessions' —
    the server's single-writer queue serializes them.
    """

    def __init__(
        self,
        server: "QuantumServer",
        session_id: int,
        client: str | None,
        *,
        tenant: str | None = None,
    ) -> None:
        self._server = server
        self.session_id = session_id
        self.client = client
        #: Quota group this session bills against under
        #: ``ServerConfig.tenant_quota`` (None: exempt from the tenant rung).
        self.tenant = tenant
        self.statistics = SessionStatistics()
        self._sequence = 0
        self._closed = False
        #: Items this session has enqueued but the writer has not finished;
        #: bounded by ``ServerConfig.session_quota`` (see the server's
        #: ``_enqueue``), which raises
        #: :class:`~repro.errors.SessionBackpressure` beyond the quota.
        self._in_flight = 0

    def _release_in_flight(self, _future: "asyncio.Future") -> None:
        """Return a quota slot once a queued item is resolved (or cancelled)."""
        if self._in_flight > 0:
            self._in_flight -= 1

    # -- lifecycle ----------------------------------------------------------

    @property
    def closed(self) -> bool:
        """True once the session (or its server) no longer accepts work."""
        return self._closed or self._server.closed

    async def close(self) -> None:
        """Close the session; in-flight operations still complete."""
        self._closed = True
        self._server._forget_session(self)

    async def __aenter__(self) -> "Session":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    def _require_open(self) -> None:
        if self.closed:
            raise QuantumError(
                f"session #{self.session_id} is closed (server shut down?)"
            )

    # -- resource transactions ---------------------------------------------

    async def commit(
        self, transaction: ResourceTransaction | str, **parse_kwargs: Any
    ) -> AdmissionResult:
        """Submit one resource transaction and await its admission outcome.

        The coroutine resumes once the writer has decided (and, for
        admissions, durably persisted) the transaction; grounding may still
        be pending — await :meth:`on_grounding` for the value assignment.

        Cancelling the coroutine *before* the writer picks the item up
        withdraws the transaction (it is never admitted); once the writer
        has started, the admission stands even if the ack is cancelled.
        """
        self._require_open()
        parsed = self._server._parse(transaction, parse_kwargs, client=self.client)
        self._sequence += 1
        sequence = self._sequence
        self.statistics.submitted += 1
        try:
            result = await self._server._submit_commit(parsed, self)
        except asyncio.CancelledError:
            self.statistics.cancelled += 1
            raise
        self._record(result)
        return AdmissionResult.from_commit(result, sequence)

    async def commit_batch(
        self,
        transactions: Sequence[ResourceTransaction | str],
        **parse_kwargs: Any,
    ) -> list[AdmissionResult]:
        """Pipeline a stream of resource transactions as one batch.

        Pass-through to :meth:`QuantumDatabase.commit_batch`: the whole
        sequence is admitted back-to-back at one serialization point (no
        other session's commit interleaves), with a single durability write
        for the batch.  Semantically identical to awaiting :meth:`commit`
        for each element in order.
        """
        self._require_open()
        parsed = [
            self._server._parse(t, parse_kwargs, client=self.client)
            for t in transactions
        ]
        self.statistics.batches += 1
        self.statistics.submitted += len(parsed)
        results = await self._server._submit_batch(parsed, self)
        wrapped = []
        for result in results:
            self._sequence += 1
            self._record(result)
            wrapped.append(AdmissionResult.from_commit(result, self._sequence))
        return wrapped

    def _record(self, result: CommitResult) -> None:
        if result.committed:
            self.statistics.accepted += 1
        else:
            self.statistics.rejected += 1

    # -- reads and blind writes ---------------------------------------------

    async def read(
        self,
        request: ReadRequest | str,
        terms: Sequence[Any] | None = None,
        *,
        mode: ReadMode | None = None,
        select: Sequence[str] | None = None,
        limit: int | None = None,
    ) -> list[dict[str, Any]]:
        """Answer a read query at a writer serialization point.

        Same semantics as :meth:`QuantumDatabase.read` (COLLAPSE grounds
        exactly the pending transactions the read touches); the returned
        dictionaries are fresh copies owned by the caller.
        """
        self._require_open()
        self.statistics.reads += 1
        return await self._server._submit_read(
            request, terms, mode=mode, select=select, limit=limit, session=self
        )

    async def insert(self, table: str, values: Sequence[Any]) -> None:
        """Blind insert, admission-checked against pending transactions."""
        self._require_open()
        self.statistics.writes += 1
        await self._server._submit_write("insert", table, values, session=self)

    async def delete(self, table: str, values: Sequence[Any]) -> None:
        """Blind delete, admission-checked against pending transactions."""
        self._require_open()
        self.statistics.writes += 1
        await self._server._submit_write("delete", table, values, session=self)

    # -- grounding -----------------------------------------------------------

    def on_grounding(self, target: GroundingTarget) -> "asyncio.Future[GroundedTransaction]":
        """A future resolved when a matching grounding happens.

        Args:
            target: a transaction id (resolves when that transaction is
                grounded — immediately if it already was), a relation name
                (resolves on the next grounding that writes to it), or a
                predicate over :class:`GroundedTransaction`.

        Returns:
            An awaitable future yielding the grounded record.
        """
        self._require_open()
        self.statistics.grounding_waits += 1
        future = self._server._register_grounding_waiter(target)
        future.add_done_callback(self._count_grounding_event)
        return future

    def _count_grounding_event(self, future: "asyncio.Future") -> None:
        if not future.cancelled():
            self.statistics.grounding_events += 1

    async def ground(self, transaction_ids: Sequence[int]) -> list[GroundedTransaction]:
        """Explicitly collapse specific pending transactions."""
        self._require_open()
        return await self._server._submit_ground(
            list(transaction_ids), session=self
        )

    async def check_in(self, transaction_id: int) -> GroundedTransaction | None:
        """Collapse one transaction and return its assignment (or None).

        Grounding the target may ground earlier same-partition transactions
        with it (the serialization prefix), so the requested record is
        looked up by id rather than taken from the grounding results.
        """
        self._require_open()
        await self._server._submit_ground([transaction_id], session=self)
        return self._server.qdb.state.grounded_results.get(transaction_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Session #{self.session_id} client={self.client!r} "
            f"submitted={self.statistics.submitted}>"
        )
