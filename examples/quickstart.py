"""Quickstart: deferred seat booking with a quantum database.

Walks through the paper's running example end to end:

1. create the travel schema and a small flight,
2. submit Mickey's resource transaction (any seat, OPTIONAL preference to
   sit next to Goofy) — it commits without picking a seat,
3. let Pluto take a specific seat with an ordinary resource transaction,
4. submit Goofy's transaction — the entangled pair collapses and both get
   adjacent seats,
5. read Mickey's booking (an ordinary read, which would have collapsed the
   uncertainty had it still existed) and check in,
6. submit a whole tour group with ``commit_batch`` — one composition pass
   per partition, one durability write for the batch — and inspect the
   witness-cache statistics that power the incremental admission fast path.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import QuantumDatabase, make_adjacent_seat_request, parse_transaction


def build_flight(qdb: QuantumDatabase, flight: int, rows: int) -> None:
    """Create the travel schema and one flight with ``rows`` rows of 3 seats."""
    qdb.create_table("Available", ["flight", "seat"], key=["flight", "seat"])
    qdb.create_table(
        "Bookings", ["passenger", "flight", "seat"], key=["flight", "seat"]
    )
    qdb.create_table(
        "Adjacent", ["flight", "seat1", "seat2"], key=["flight", "seat1", "seat2"]
    )
    seats, adjacency = [], []
    for row in range(1, rows + 1):
        labels = [f"{row}{letter}" for letter in "ABC"]
        seats.extend((flight, label) for label in labels)
        for left, right in zip(labels, labels[1:]):
            adjacency.append((flight, left, right))
            adjacency.append((flight, right, left))
    qdb.load_rows("Available", seats)
    qdb.load_rows("Adjacent", adjacency)


def main() -> None:
    qdb = QuantumDatabase()
    build_flight(qdb, flight=123, rows=3)

    print("== Mickey books a seat, hoping to sit next to Goofy ==")
    mickey = qdb.execute(make_adjacent_seat_request("Mickey", "Goofy", flight=123))
    print(f"committed: {mickey.committed}, value assignment deferred: {mickey.pending}")
    print(f"pending transactions in the system: {qdb.pending_count}")

    print("\n== Pluto insists on seat 1A (a hard constraint) ==")
    pluto = qdb.execute(
        "-Available(123, '1A'), +Bookings('Pluto', 123, '1A') :-1 Available(123, '1A')"
    )
    print(f"committed: {pluto.committed} (Mickey's optional preference cannot block him)")

    print("\n== Goofy arrives: the entangled pair is grounded together ==")
    goofy = qdb.execute(make_adjacent_seat_request("Goofy", "Mickey", flight=123))
    for record in goofy.grounded:
        print(
            f"  {record.transaction.client}: flight {record.valuation.get('f', 123)}, "
            f"seat {record.valuation['s']}, coordinated={record.coordinated}"
        )

    print("\n== Reads see an ordinary, concrete database ==")
    for row in qdb.read("Bookings", [None, 123, None], select=["_0", "_2"]):
        print(f"  {row['_0']} -> seat {row['_2']}")

    print("\n== Check-in returns the (now fixed) assignment ==")
    record = qdb.check_in(mickey.transaction_id)
    assert record is not None
    print(f"  Mickey checked in: seat {record.valuation['s']}")
    print(f"\ncoordination report: {qdb.coordination_report()}")

    print("\n== A tour group arrives: commit_batch admits them in one pass ==")
    group = [
        parse_transaction(
            f"-Available(123, ?s), +Bookings('{name}', 123, ?s) "
            f":-1 Available(123, ?s)",
            client=name,
        )
        for name in ("Huey", "Dewey", "Louie")
    ]
    results = qdb.commit_batch(group)
    for result in results:
        print(
            f"  {result.transaction.client}: committed={result.committed}, "
            f"seat deferred={result.pending}"
        )

    print("\n== The witness cache kept admission incremental ==")
    stats = qdb.cache_statistics
    print(
        f"  witness hits={stats.witness_hits}, misses={stats.witness_misses}, "
        f"invalidations={stats.witness_invalidations}"
    )
    print(
        f"  composed-body passes={stats.composed_body_passes()} "
        f"(verifications={stats.verifications}, full solves={stats.full_solves})"
    )


if __name__ == "__main__":
    main()
