"""Tests for the DPLL SAT solver and random k-SAT generation."""

from __future__ import annotations

import random

import pytest

from repro.errors import SolverError
from repro.solver.randomsat import CRITICAL_RATIO_3SAT, random_ksat, ratio_sweep
from repro.solver.sat import CNF, Clause, DPLLSolver, Literal


def lit(name: str, positive: bool = True) -> Literal:
    return Literal(name, positive)


class TestCNFModel:
    def test_literal_negate(self):
        assert lit("x").negate() == lit("x", False)

    def test_clause_status(self):
        clause = Clause((lit("x"), lit("y", False)))
        assert clause.status({}) is None
        assert clause.status({"x": True}) is True
        assert clause.status({"x": False, "y": True}) is False

    def test_empty_clause_rejected(self):
        with pytest.raises(SolverError):
            CNF([[]])

    def test_variables(self):
        cnf = CNF([[lit("x"), lit("y")], [lit("z", False)]])
        assert cnf.variables() == {"x", "y", "z"}


class TestDPLL:
    def test_satisfiable_instance(self):
        cnf = CNF([[lit("x"), lit("y")], [lit("x", False), lit("y")], [lit("y", False), lit("z")]])
        assignment = DPLLSolver().solve(cnf)
        assert assignment is not None
        assert cnf.is_satisfied_by(assignment)

    def test_unsatisfiable_instance(self):
        cnf = CNF(
            [
                [lit("x"), lit("y")],
                [lit("x"), lit("y", False)],
                [lit("x", False), lit("y")],
                [lit("x", False), lit("y", False)],
            ]
        )
        assert DPLLSolver().solve(cnf) is None

    def test_unit_propagation(self):
        cnf = CNF([[lit("x")], [lit("x", False), lit("y")]])
        solver = DPLLSolver()
        assignment = solver.solve(cnf)
        assert assignment == {"x": True, "y": True}
        assert solver.statistics.unit_propagations >= 2

    def test_assignment_completes_unconstrained_variables(self):
        cnf = CNF([[lit("x"), lit("y")]])
        assignment = DPLLSolver().solve(cnf)
        assert assignment is not None
        assert set(assignment) == {"x", "y"}

    def test_agreement_with_bruteforce(self):
        rng = random.Random(3)
        for _ in range(20):
            cnf = random_ksat(4, rng.randint(4, 18), k=3, rng=rng)
            variables = sorted(cnf.variables())
            brute = False
            for mask in range(2 ** len(variables)):
                assignment = {
                    var: bool(mask >> i & 1) for i, var in enumerate(variables)
                }
                if cnf.is_satisfied_by(assignment):
                    brute = True
                    break
            assert DPLLSolver().is_satisfiable(cnf) == brute


class TestRandomKSat:
    def test_shape(self):
        cnf = random_ksat(10, 30, k=3, rng=random.Random(0))
        assert len(cnf) == 30
        assert all(len(clause.literals) == 3 for clause in cnf.clauses)
        assert all(
            len({l.variable for l in clause.literals}) == 3 for clause in cnf.clauses
        )

    def test_invalid_parameters(self):
        with pytest.raises(SolverError):
            random_ksat(2, 5, k=3)
        with pytest.raises(SolverError):
            random_ksat(0, 5)

    def test_ratio_sweep(self):
        instances = ratio_sweep(12, [1.0, CRITICAL_RATIO_3SAT, 8.0], seed=1)
        assert [round(r, 2) for r, _ in instances] == [1.0, 4.27, 8.0]
        assert len(instances[0][1]) == 12
        assert len(instances[2][1]) == 96

    def test_under_constrained_mostly_sat_over_constrained_mostly_unsat(self):
        rng = random.Random(7)
        easy_sat = sum(
            DPLLSolver().is_satisfiable(random_ksat(15, 15, rng=rng)) for _ in range(10)
        )
        hard_unsat = sum(
            DPLLSolver().is_satisfiable(random_ksat(15, 120, rng=rng)) for _ in range(10)
        )
        assert easy_sat >= 9
        assert hard_unsat <= 1
