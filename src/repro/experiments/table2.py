"""Table 2 — average percentage of successful coordination vs. k.

Computed over the same sweep as Figure 7: for each quantum-database ``k``
and for the intelligent-social baseline, the coordination percentage
averaged across the database sizes.  Expected shape: coordination grows
with k (the largest k reaching ≈100%), IS sits far below, and even the
smallest k roughly doubles IS.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.figure7 import (
    Figure7Result,
    ScalabilityParameters,
    default_parameters,
    paper_parameters,
    run_figure7,
)
from repro.experiments.metrics import mean
from repro.experiments.report import format_table, print_report

__all__ = [
    "Table2Result",
    "run_table2",
    "table2_from_figure7",
    "default_parameters",
    "paper_parameters",
    "main",
]


@dataclass
class Table2Result:
    """Average coordination percentage per system label."""

    averages: dict[str, float]

    def rows(self) -> list[tuple[str, float]]:
        """(label, average %) rows, quantum configurations first."""
        quantum = [(k, v) for k, v in self.averages.items() if k != "IS"]
        baseline = [(k, v) for k, v in self.averages.items() if k == "IS"]
        return quantum + baseline


def table2_from_figure7(figure7: Figure7Result) -> Table2Result:
    """Derive Table 2 from an existing Figure 7 sweep (no re-run)."""
    averages = {
        label: mean(run.coordination_percentage for _count, run in points)
        for label, points in figure7.series.items()
    }
    return Table2Result(averages=averages)


def run_table2(parameters: ScalabilityParameters | None = None) -> Table2Result:
    """Run the sweep and compute Table 2."""
    return table2_from_figure7(run_figure7(parameters))


def main(parameters: ScalabilityParameters | None = None) -> Table2Result:
    """Run and print the reproduced Table 2."""
    result = run_table2(parameters)
    body = format_table(
        ["System", "Average % successful coordination"],
        result.rows(),
        precision=1,
    )
    print_report("Table 2: average percentage of successful coordinations", body)
    return result


if __name__ == "__main__":  # pragma: no cover - manual invocation
    main()
