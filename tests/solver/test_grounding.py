"""Tests for the grounding search over the relational store."""

from __future__ import annotations

import pytest

from repro.errors import GroundingError
from repro.logic.atoms import Atom
from repro.logic.formula import (
    AtomFormula,
    Equality,
    Negation,
    conjunction,
    disjunction,
)
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Variable
from repro.relational.database import Database
from repro.solver.grounding import GroundingSearch

F, S, S2, P = Variable("f"), Variable("s"), Variable("s2"), Variable("p")


@pytest.fixture
def db() -> Database:
    database = Database()
    database.create_table("Available", ["flight", "seat"], key=["flight", "seat"])
    database.create_table("Bookings", ["passenger", "flight", "seat"], key=["flight", "seat"])
    database.create_table("Adjacent", ["flight", "seat1", "seat2"], key=["flight", "seat1", "seat2"])
    for seat in ("1A", "1B", "1C"):
        database.insert("Available", (1, seat))
    database.insert("Bookings", ("Goofy", 1, "1B"))
    for left, right in (("1A", "1B"), ("1B", "1A"), ("1B", "1C"), ("1C", "1B")):
        database.insert("Adjacent", (1, left, right))
    return database


def atom(relation, terms):
    return AtomFormula(Atom.body(relation, terms))


class TestBasicSearch:
    def test_single_atom(self, db):
        search = GroundingSearch(db)
        result = search.find_one(atom("Available", [F, S]))
        assert result.satisfiable
        valuation = result.valuation()
        assert valuation["f"] == 1 and valuation["s"] in {"1A", "1B", "1C"}

    def test_unsatisfiable(self, db):
        search = GroundingSearch(db)
        assert not search.find_one(atom("Available", [2, S])).satisfiable
        assert not search.exists(atom("Available", [2, S]))

    def test_missing_table_is_unsatisfiable(self, db):
        search = GroundingSearch(db)
        assert not search.exists(atom("Nope", [S]))

    def test_require_raises(self, db):
        with pytest.raises(GroundingError):
            GroundingSearch(db).require(atom("Available", [2, S]))

    def test_join_through_shared_variable(self, db):
        search = GroundingSearch(db)
        formula = conjunction(
            [
                atom("Bookings", ["Goofy", F, S2]),
                atom("Adjacent", [F, S, S2]),
                atom("Available", [F, S]),
            ]
        )
        result = search.find_one(formula)
        assert result.satisfiable
        assert result.valuation()["s"] in {"1A", "1C"}

    def test_find_all_enumerates_distinct_groundings(self, db):
        search = GroundingSearch(db)
        results = search.find_all(atom("Available", [1, S]), required=[S])
        assert {r.valuation()["s"] for r in results} == {"1A", "1B", "1C"}

    def test_limit(self, db):
        search = GroundingSearch(db)
        results = list(search.find(atom("Available", [1, S]), limit=2))
        assert len(results) == 2


class TestFormulaFeatures:
    def test_equality_binds(self, db):
        search = GroundingSearch(db)
        formula = conjunction([atom("Available", [F, S]), Equality(S, Constant("1C"))])
        result = search.find_one(formula)
        assert result.satisfiable and result.valuation()["s"] == "1C"

    def test_negated_equality_excludes(self, db):
        search = GroundingSearch(db)
        formula = conjunction(
            [
                atom("Available", [1, S]),
                Negation(Equality(S, Constant("1A"))),
                Negation(Equality(S, Constant("1B"))),
            ]
        )
        result = search.find_one(formula, required=[S])
        assert result.satisfiable and result.valuation()["s"] == "1C"

    def test_negated_conjunction_all_different(self, db):
        search = GroundingSearch(db)
        formula = conjunction(
            [
                atom("Available", [1, S]),
                atom("Available", [1, S2]),
                Negation(Equality(S, S2)),
            ]
        )
        result = search.find_one(formula, required=[S, S2])
        assert result.satisfiable
        assert result.valuation()["s"] != result.valuation()["s2"]

    def test_disjunction_falls_back_to_second_branch(self, db):
        search = GroundingSearch(db)
        # First branch impossible (flight 2 empty); equality branch works.
        formula = conjunction(
            [
                atom("Available", [1, S2]),
                disjunction([atom("Available", [2, S]), Equality(S, S2)]),
            ]
        )
        result = search.find_one(formula, required=[S, S2])
        assert result.satisfiable
        assert result.valuation()["s"] == result.valuation()["s2"]

    def test_composition_style_formula(self, db):
        # Body of T12 from Figure 3: B(M,1,s1) ∧ (A(f2,s2) ∨ (f2=1 ∧ s1=s2)).
        s1, f2, s2 = Variable("s1"), Variable("f2"), Variable("s2")
        db2 = Database()
        db2.create_table("B", ["p", "f", "s"], key=["f", "s"])
        db2.create_table("A", ["f", "s"], key=["f", "s"])
        db2.insert("B", ("M", 1, "9Z"))
        formula = conjunction(
            [
                atom("B", ["M", 1, s1]),
                disjunction(
                    [
                        atom("A", [f2, s2]),
                        conjunction([Equality(f2, Constant(1)), Equality(s1, s2)]),
                    ]
                ),
            ]
        )
        result = GroundingSearch(db2).find_one(formula, required=[s1, f2, s2])
        # A is empty, so the only grounding goes through the unification
        # predicate: Donald takes the seat Mickey's cancellation frees up.
        assert result.satisfiable
        valuation = result.valuation()
        assert valuation == {"s1": "9Z", "f2": 1, "s2": "9Z"}

    def test_initial_substitution_respected(self, db):
        search = GroundingSearch(db)
        initial = Substitution({S: Constant("1B")})
        result = search.find_one(atom("Available", [1, S]), initial=initial)
        assert result.satisfiable and result.valuation()["s"] == "1B"
        conflicting = Substitution({S: Constant("9Z")})
        assert not search.find_one(atom("Available", [1, S]), initial=conflicting).satisfiable

    def test_required_variable_must_be_ground(self, db):
        search = GroundingSearch(db)
        # S2 appears nowhere in the formula, so no grounding can bind it.
        result = search.find_one(atom("Available", [1, S]), required=[S, S2])
        assert not result.satisfiable

    def test_statistics_reported(self, db):
        search = GroundingSearch(db)
        result = search.find_one(atom("Available", [1, S]))
        assert result.statistics.rows_examined >= 1
