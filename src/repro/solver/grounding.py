"""Grounding search: satisfiability of composed bodies over the database.

The quantum database invariant is "every composed transaction body has at
least one grounding over the extensional database D".  The paper's prototype
checks this by translating the composed body into a ``LIMIT 1`` SQL join;
this module plays that role against our own relational engine, but works
directly on the :class:`~repro.logic.formula.Formula` produced by
composition (Theorem 3.5), including the disjunctions and negated
unification predicates that the SQL translation would have to encode as
outer joins and inequality predicates.

The search is a backtracking enumeration over the formula structure:

* relational atoms generate candidate rows from the database (using the
  tables' indexes for the positions already bound),
* equalities unify terms under the running substitution,
* disjunctions are choice points,
* negations are deferred and checked once the substitution is complete.

The result of a successful search is a ground substitution — a *grounding*
in the paper's terminology — which the quantum database caches in its
solution cache and ultimately uses to execute the pending update portions.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.errors import FormulaError, GroundingError
from repro.logic.atoms import Atom
from repro.logic.formula import (
    AtomFormula,
    Conjunction,
    Disjunction,
    Equality,
    FALSE,
    Formula,
    Negation,
    TRUE,
)
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Variable
from repro.logic.unification import unify_terms
from repro.relational.database import Database


@dataclass
class GroundingStatistics:
    """Work counters for one grounding search."""

    rows_examined: int = 0
    choice_points: int = 0
    backtracks: int = 0
    nodes: int = 0
    exhausted_budget: bool = False
    #: Subtrees the branch-and-bound strategy proved dead and skipped.
    prunes: int = 0
    #: Searches answered by a per-shape fast path before the general search.
    fastpath_hits: int = 0
    #: Greedy descents performed by the sampling admission estimator.
    samples: int = 0
    #: High-water mark of the undo trail (deepest destructive binding stack).
    undo_depth: int = 0

    def add(self, other: "GroundingStatistics") -> None:
        """Accumulate ``other``'s counters into this one."""
        self.rows_examined += other.rows_examined
        self.choice_points += other.choice_points
        self.backtracks += other.backtracks
        self.nodes += other.nodes
        self.exhausted_budget = self.exhausted_budget or other.exhausted_budget
        self.prunes += other.prunes
        self.fastpath_hits += other.fastpath_hits
        self.samples += other.samples
        # A high-water mark, not a flow: the deepest trail any search saw.
        self.undo_depth = max(self.undo_depth, other.undo_depth)


@dataclass
class GroundingResult:
    """Outcome of a grounding search.

    Attributes:
        substitution: the ground substitution found (empty when
            ``satisfiable`` is False).
        satisfiable: whether any grounding exists.
        statistics: search work counters.
    """

    substitution: Substitution
    satisfiable: bool
    statistics: GroundingStatistics = field(default_factory=GroundingStatistics)

    def valuation(self) -> dict[str, Any]:
        """The grounding as a variable-name → value mapping."""
        return self.substitution.as_valuation()

    def __bool__(self) -> bool:
        return self.satisfiable


class GroundingSearch:
    """Backtracking grounding search over a relational database.

    Searches are *reentrant*: all per-search state (the node budget, the
    work counters) lives in the call frame, so several searches may run
    concurrently on the same instance — the session layer's grounding
    planner fans the plan phase for independent partitions out to an
    executor (see ``docs/architecture.md``, "Concurrent grounding").  The
    shared ``totals`` accumulator is guarded by a lock; the database itself
    must not be mutated while searches are in flight (the single-writer
    admission loop guarantees that).
    """

    def __init__(self, database: Database) -> None:
        self.database = database
        #: Counters accumulated over every search this instance ever ran;
        #: benchmarks read these to report total grounding work.
        self.totals = GroundingStatistics()
        #: Number of :meth:`find` invocations (searches started).
        self.searches = 0
        #: Optional callback invoked (under the totals lock) after every
        #: search completes, with the searched formula and its work
        #: counters.  The session layer uses it to stream per-server search
        #: statistics without polling.
        self.observer: Callable[[Formula, GroundingStatistics], None] | None = None
        self._totals_lock = threading.Lock()

    # -- public API ---------------------------------------------------------

    def absorb_nodes(self, nodes: int) -> None:
        """Fold search work performed on this instance's behalf elsewhere.

        The process shard backend runs plan searches in worker processes
        against shipped snapshots; the workers report their node counts
        back and the writer folds them in here, so ``totals.nodes`` stays
        comparable across backends.
        """
        with self._totals_lock:
            self.totals.nodes += nodes

    def absorb_statistics(
        self,
        stats: GroundingStatistics,
        *,
        formula: Formula | None = None,
        count_search: bool = False,
    ) -> None:
        """Fold a complete search's counters into the shared totals.

        The alternative-strategy searchers (branch-and-bound, shape fast
        paths, the sampling estimator) run their own traversal but report
        through the same accumulator as :meth:`find`, so ``totals`` stays
        the single source of truth no matter which strategy ran.  With
        ``formula`` given the per-search observer fires too, and
        ``count_search`` increments :attr:`searches` — together mirroring
        exactly what one :meth:`find` call would have recorded.
        """
        with self._totals_lock:
            if count_search:
                self.searches += 1
            self.totals.add(stats)
            observer = self.observer
            if formula is not None and observer is not None:
                observer(formula, stats)

    def exists(self, formula: Formula, *, initial: Substitution | None = None) -> bool:
        """True if the formula has at least one grounding (a LIMIT 1 probe)."""
        return self.find_one(formula, initial=initial).satisfiable

    def find_one(
        self,
        formula: Formula,
        *,
        required: Iterable[Variable] | None = None,
        initial: Substitution | None = None,
        node_budget: int | None = None,
    ) -> GroundingResult:
        """Find one grounding of ``formula``.

        Args:
            formula: the composed body to ground.
            required: variables that must be bound to constants in the
                result (defaults to all free variables of the formula).
            initial: a substitution to extend; used by the solution cache to
                try extending a previously found grounding.
            node_budget: optional cap on search nodes; when exhausted the
                search gives up (reported as unsatisfiable with
                ``statistics.exhausted_budget`` set), which callers use for
                best-effort preference maximisation.
        """
        stats = GroundingStatistics()
        for result in self.find(
            formula,
            required=required,
            initial=initial,
            limit=1,
            node_budget=node_budget,
            statistics=stats,
        ):
            return result
        # Unsatisfiable (or budget-exhausted): the result still carries the
        # real work counters, so callers can see ``exhausted_budget``.
        return GroundingResult(Substitution.empty(), False, stats)

    def find_all(
        self,
        formula: Formula,
        *,
        required: Iterable[Variable] | None = None,
        limit: int | None = None,
    ) -> list[GroundingResult]:
        """Enumerate groundings (used by possible-world utilities and tests)."""
        return list(self.find(formula, required=required, limit=limit))

    def require(
        self,
        formula: Formula,
        *,
        required: Iterable[Variable] | None = None,
        initial: Substitution | None = None,
    ) -> GroundingResult:
        """Like :meth:`find_one` but raise when no grounding exists.

        Raises:
            GroundingError: if the formula is unsatisfiable over the
                database.
        """
        result = self.find_one(formula, required=required, initial=initial)
        if not result.satisfiable:
            raise GroundingError(f"no grounding exists for {formula!r}")
        return result

    # -- search -------------------------------------------------------------

    def find(
        self,
        formula: Formula,
        *,
        required: Iterable[Variable] | None = None,
        initial: Substitution | None = None,
        limit: int | None = None,
        node_budget: int | None = None,
        statistics: GroundingStatistics | None = None,
    ) -> Iterator[GroundingResult]:
        """Yield groundings of ``formula`` one by one.

        ``statistics`` lets a caller hand in the accumulator (so the work
        counters stay observable even when nothing is yielded); by default
        a fresh one is created per search.
        """
        simplified = formula.simplify()
        if simplified is FALSE:
            return
        required_vars = (
            frozenset(required) if required is not None else simplified.free_variables()
        )
        stats = statistics if statistics is not None else GroundingStatistics()
        with self._totals_lock:
            self.searches += 1
        start = initial or Substitution.empty()
        count = 0
        seen: set[frozenset] = set()
        try:
            for substitution in self._search(
                [simplified], start, [], stats, node_budget
            ):
                grounded = self._close(substitution, required_vars)
                if grounded is None:
                    continue
                # Chase alias chains: a required variable may be bound to
                # another variable that the close step resolved to a
                # constant (e.g. through an equality), and the signature
                # must key on that constant.
                signature = frozenset(
                    (var.name, grounded.apply_term(var).value)  # type: ignore[union-attr]
                    for var in required_vars
                    if var in grounded
                )
                if signature in seen:
                    continue
                seen.add(signature)
                yield GroundingResult(grounded, True, stats)
                count += 1
                if limit is not None and count >= limit:
                    return
        finally:
            # Runs both on exhaustion and when the caller closes the
            # generator early (e.g. find_one), so the totals always include
            # this search's work.
            with self._totals_lock:
                self.totals.add(stats)
                observer = self.observer
                if observer is not None:
                    observer(simplified, stats)

    def _search(
        self,
        parts: list[Formula],
        substitution: Substitution,
        deferred: list[Formula],
        stats: GroundingStatistics,
        node_budget: int | None,
    ) -> Iterator[Substitution]:
        """Recursive backtracking over the conjunction ``parts``."""
        stats.nodes += 1
        if node_budget is not None and stats.nodes > node_budget:
            stats.exhausted_budget = True
            return
        if not parts:
            if self._check_deferred(deferred, substitution):
                yield substitution
            return
        index, part = self._select_part(parts, substitution)
        rest = parts[:index] + parts[index + 1 :]

        if part is TRUE:
            yield from self._search(rest, substitution, deferred, stats, node_budget)
            return
        if part is FALSE:
            stats.backtracks += 1
            return
        if isinstance(part, Conjunction):
            yield from self._search(
                list(part.parts) + rest, substitution, deferred, stats, node_budget
            )
            return
        if isinstance(part, Equality):
            unified = unify_terms(part.left, part.right, substitution)
            if unified is None:
                stats.backtracks += 1
                return
            ok, still_deferred = self._propagate_deferred(deferred, unified)
            if not ok:
                stats.backtracks += 1
                return
            yield from self._search(rest, unified, still_deferred, stats, node_budget)
            return
        if isinstance(part, Negation):
            # Evaluate immediately when already decidable; otherwise keep it
            # on the deferred list, which is re-checked every time the
            # substitution grows (fail-fast propagation of the ¬ϕ exclusion
            # constraints produced by composition).
            decision = self._try_negation(part, substitution)
            if decision is False:
                stats.backtracks += 1
                return
            if decision is True:
                yield from self._search(rest, substitution, deferred, stats, node_budget)
            else:
                yield from self._search(
                    rest, substitution, deferred + [part], stats, node_budget
                )
            return
        if isinstance(part, Disjunction):
            stats.choice_points += 1
            for branch in part.parts:
                yield from self._search(
                    [branch] + rest, substitution, deferred, stats, node_budget
                )
            return
        if isinstance(part, AtomFormula):
            stats.choice_points += 1
            for extended in self._match_atom(part.atom, substitution, stats):
                ok, still_deferred = self._propagate_deferred(deferred, extended)
                if not ok:
                    stats.backtracks += 1
                    continue
                yield from self._search(rest, extended, still_deferred, stats, node_budget)
            return
        raise FormulaError(f"unsupported formula node {part!r}")

    def _try_negation(
        self, part: Negation, substitution: Substitution
    ) -> bool | None:
        """Evaluate a negation if its variables are all bound, else ``None``."""
        valuation = self._partial_valuation(substitution)
        bound = set(valuation)
        if not all(var.name in bound for var in part.free_variables()):
            return None
        try:
            return part.evaluate(valuation, self._oracle)
        except FormulaError:
            return None

    def _propagate_deferred(
        self, deferred: list[Formula], substitution: Substitution
    ) -> tuple[bool, list[Formula]]:
        """Re-check deferred negations after the substitution grew.

        Returns ``(False, ...)`` as soon as a now-decidable negation fails,
        otherwise the remaining (still undecidable) deferred parts.
        """
        if not deferred:
            return True, deferred
        remaining: list[Formula] = []
        for part in deferred:
            decision = self._try_negation(part, substitution)  # type: ignore[arg-type]
            if decision is False:
                return False, deferred
            if decision is None:
                remaining.append(part)
        return True, remaining

    # -- part selection ------------------------------------------------------

    def _select_part(
        self, parts: list[Formula], substitution: Substitution
    ) -> tuple[int, Formula]:
        """Pick the cheapest / most constrained part to process next.

        Equalities, constants and negations are free; among atoms the one
        with the most already-bound positions is preferred (an MRV-style
        heuristic); disjunctions are handled last.
        """
        best_atom: tuple[int, int] | None = None  # (bound positions, -index)
        best_atom_index = -1
        first_disjunction = -1
        for index, part in enumerate(parts):
            if isinstance(part, (Equality, Negation, Conjunction, _TruthAlias)) or part in (
                TRUE,
                FALSE,
            ):
                return index, part
            if isinstance(part, AtomFormula):
                bound = self._bound_positions(part.atom, substitution)
                score = (bound, -index)
                if best_atom is None or score > best_atom:
                    best_atom = score
                    best_atom_index = index
            elif isinstance(part, Disjunction) and first_disjunction < 0:
                first_disjunction = index
        if best_atom_index >= 0:
            return best_atom_index, parts[best_atom_index]
        if first_disjunction >= 0:
            return first_disjunction, parts[first_disjunction]
        return 0, parts[0]

    @staticmethod
    def _bound_positions(atom: Atom, substitution: Substitution) -> int:
        count = 0
        for term in atom.terms:
            resolved = substitution.apply_term(term)
            if isinstance(resolved, Constant):
                count += 1
        return count

    # -- atom matching -------------------------------------------------------

    def _match_atom(
        self, atom: Atom, substitution: Substitution, stats: GroundingStatistics
    ) -> Iterator[Substitution]:
        """Yield extensions of ``substitution`` for rows matching ``atom``."""
        if not self.database.has_table(atom.relation):
            return
        table = self.database.table(atom.relation)
        schema = table.schema
        resolved = [substitution.apply_term(t) for t in atom.terms]
        if len(resolved) != schema.arity:
            raise FormulaError(
                f"atom {atom!r} has arity {len(resolved)}, table "
                f"{schema.name!r} has arity {schema.arity}"
            )
        columns: list[str] = []
        values: list[Any] = []
        for position, term in enumerate(resolved):
            if isinstance(term, Constant):
                columns.append(schema.columns[position].name)
                values.append(term.value)
        rows = table.lookup(columns, values) if columns else table.scan()
        for row in rows:
            stats.rows_examined += 1
            extended: Substitution | None = substitution
            for term, value in zip(resolved, row.values):
                assert extended is not None
                extended = unify_terms(term, Constant(value), extended)
                if extended is None:
                    break
            if extended is not None:
                yield extended

    # -- finishing -----------------------------------------------------------

    def _check_deferred(
        self, deferred: Sequence[Formula], substitution: Substitution
    ) -> bool:
        """Evaluate deferred negations once the substitution is final."""
        if not deferred:
            return True
        valuation = self._partial_valuation(substitution)
        oracle = self._oracle
        for part in deferred:
            try:
                if not part.evaluate(valuation, oracle):
                    return False
            except FormulaError:
                # A variable in a negated subformula is still unbound; be
                # conservative and reject this candidate grounding.
                return False
        return True

    def _oracle(self, relation: str, values: tuple[Any, ...]) -> bool:
        """Fact oracle: membership of a ground atom in the database."""
        if not self.database.has_table(relation):
            return False
        table = self.database.table(relation)
        columns = list(table.schema.column_names)
        for _row in table.lookup(columns, list(values)):
            return True
        return False

    @staticmethod
    def _partial_valuation(substitution: Substitution) -> dict[str, Any]:
        """Valuation of the ground part of a substitution."""
        valuation: dict[str, Any] = {}
        for var, term in substitution.items():
            if isinstance(term, Constant):
                valuation[var.name] = term.value
        return valuation

    def _close(
        self, substitution: Substitution, required: frozenset[Variable]
    ) -> Substitution | None:
        """Ensure every required variable resolves to a constant.

        Variables aliased to other variables are chased; a required variable
        with no constant binding causes the candidate to be rejected.
        """
        closed = substitution
        for var in required:
            resolved = closed.apply_term(var)
            if isinstance(resolved, Variable):
                return None
            if var not in closed:
                closed = closed.bind(var, resolved)
        return closed


#: Placeholder type so isinstance checks in _select_part stay tidy.
class _TruthAlias:  # pragma: no cover - never instantiated
    pass
