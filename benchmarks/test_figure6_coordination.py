"""Figure 6 — percentage of coordination per arrival order.

Regenerates the Figure 6 bars (QuantumDB vs Intelligent Social for the four
arrival orders).  Expected shape: the quantum database achieves 100% for
every order; IS matches it only under Alternate.
"""

from __future__ import annotations


from benchmarks.conftest import BENCH_SCALE, report
from repro.experiments.figure6 import default_parameters, paper_parameters, run_figure6
from repro.experiments.report import format_table
from repro.relational.planner import MYSQL_JOIN_LIMIT
from repro.workloads.arrival_orders import ArrivalOrder

SPEC = paper_parameters() if BENCH_SCALE == "paper" else default_parameters()


def test_figure6_coordination(benchmark):
    result = benchmark.pedantic(
        lambda: run_figure6(SPEC, k=MYSQL_JOIN_LIMIT, seed=0), rounds=1, iterations=1
    )
    rows = result.rows()
    report("Figure 6", format_table(["Arrival order", "QuantumDB %", "IS %"], rows, precision=1))

    by_order = {order: (q, i) for (order, q, i) in rows}
    # The quantum database reaches full coordination for every arrival order.
    for order, (quantum_pct, _is_pct) in by_order.items():
        assert quantum_pct == 100.0, order
    # IS keeps up when partners arrive back to back, never beats the quantum
    # database, and falls short on at least one deferral-heavy order.  (At
    # the paper's 34-row size IS falls well short on every non-Alternate
    # order; run with REPRO_BENCH_SCALE=paper to see the full gap.)
    assert by_order[ArrivalOrder.ALTERNATE.value][1] == 100.0
    for order, (quantum_pct, is_pct) in by_order.items():
        assert is_pct <= quantum_pct, order
