"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs work in offline
environments whose setuptools/pip combination cannot build PEP 517 wheels
(no ``wheel`` package available).  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
