"""Sharded partition execution with a signature-based routing index.

This package is the scale layer between the quantum database and its
partitions (see ``docs/architecture.md``, "Sharded partition execution"):

* :class:`~repro.sharding.signature.SignatureIndex` — a conservative
  constant-set/wildcard index over each partition's atoms that prefilters
  ``merged_for`` candidates to near-O(1) on constant-pinned workloads,
  maintained incrementally on admit/ground/merge and falling back to the
  exhaustive scan when imprecise (decisions are bit-identical either way);
* :class:`~repro.sharding.shard.Shard` — a worker owning a disjoint set of
  partitions plus the executor the grounding plan phase fans out on
  (a thread pool or a process pool, selected by
  :class:`~repro.sharding.backend.ShardBackend`);
* :mod:`repro.sharding.backend` — the executor strategies and the process
  backend's picklable work shipping: grounding plans
  (:class:`~repro.sharding.backend.PlanPayload` →
  :class:`~repro.sharding.backend.PlanResult`) and admission searches
  (:class:`~repro.sharding.backend.AdmissionPayload` →
  :class:`~repro.sharding.backend.AdmissionResult`);
* :class:`~repro.sharding.manager.ShardedPartitionManager` — the drop-in
  :class:`~repro.core.partition.PartitionManager` that routes admissions
  through the index, serializes the rare cross-shard merge, and keeps the
  shared :class:`~repro.sharding.manager.PendingTable` for global
  ``k``-bound accounting;
* :mod:`repro.sharding.admission_lane` — the router-first concurrent
  admission pipeline: per-shard :class:`AdmissionLane` writers dispatched
  over a deterministic conflict ladder, with cross-shard arrivals as
  epoch barriers (decisions bit-identical to the serialized writer; see
  ``docs/architecture.md``, "Concurrent admission").

Enable it with ``QuantumConfig(shards=N)``; pick the executor strategy
with ``QuantumConfig(shard_backend="thread" | "process")``; turn on
lane-parallel admission with ``QuantumConfig(admission_lanes=True)``.
"""

from repro.sharding.admission_lane import (
    AdmissionController,
    AdmissionLane,
    AdmissionStatistics,
    ConflictRung,
)
from repro.sharding.backend import (
    AdmissionPayload,
    AdmissionResult,
    PlanPayload,
    PlanResult,
    ShardBackend,
    TableSnapshot,
)
from repro.sharding.manager import (
    PendingRef,
    PendingTable,
    ShardedPartitionManager,
    ShardedPartitionStatistics,
)
from repro.sharding.shard import Shard
from repro.sharding.signature import SignatureIndex, SignatureIndexStatistics

__all__ = [
    "AdmissionController",
    "AdmissionLane",
    "AdmissionPayload",
    "AdmissionResult",
    "AdmissionStatistics",
    "ConflictRung",
    "PendingRef",
    "PendingTable",
    "PlanPayload",
    "PlanResult",
    "Shard",
    "ShardBackend",
    "ShardedPartitionManager",
    "ShardedPartitionStatistics",
    "SignatureIndex",
    "SignatureIndexStatistics",
    "TableSnapshot",
]
