"""Recovery entry points for the segmented durability engine.

Replay order (the manifest drives all of it):

1. **Manifest** — atomically-updated source of the live segment chain;
   a leftover ``MANIFEST.tmp`` from an interrupted update is discarded,
   orphan segment files from an interrupted compaction are removed.
2. **Base** — the newest surviving ``CHECKPOINT_BASE`` (or legacy
   ``CHECKPOINT``) snapshot is restored.  A base synthesized off the
   writer (``incremental_bases``) reuses the LSN of the newest delta it
   folded, so until compaction drops that delta's old record both can
   coexist on disk — the superseded delta is filtered out here.
3. **Delta chain** — every ``CHECKPOINT_DELTA`` after that base is
   applied in LSN order (per table: deletes, then inserts).
4. **Unsealed tail** — committed raw records past the newest checkpoint
   are redone; a torn trailing record in the unsealed tail is truncated
   with a warning (CRC damage in a *sealed* segment raises
   :class:`~repro.errors.RecoveryError` — sealed bytes never change, so
   damage there is real corruption, not a crash artifact).

All of 1–4 happen when :class:`SegmentedWriteAheadLog` opens the
directory; :func:`recover` wraps that in the same shape as the legacy
:func:`repro.relational.recovery.recover_database` path.
"""

from __future__ import annotations

from typing import Callable

from repro.relational.database import Database
from repro.relational.recovery import recover_database
from repro.storage.config import DurabilityConfig
from repro.storage.engine import SegmentedWriteAheadLog


def recover(
    directory,
    schema_factory: Callable[[], Database],
    config: DurabilityConfig | None = None,
) -> Database:
    """Rebuild a database from a segmented-log directory.

    Args:
        directory: the engine directory (manifest + segments) that
            survived the crash.
        schema_factory: callable returning a fresh :class:`Database` with
            all schemas declared but no data (schemas are catalog
            metadata, exactly as in the legacy recovery path).
        config: engine configuration override (thresholds, fsync); the
            default opens the directory with standard parameters.

    Returns:
        A database containing exactly the effects of committed
        transactions, wired to the (re-opened) segmented log so
        subsequent writes keep appending durably.

    Raises:
        RecoveryError: on corruption — a damaged sealed segment, a
            missing segment file, a delta chain without its base, or an
            impossible replay operation.
    """
    engine = SegmentedWriteAheadLog(directory, config)
    return recover_database(schema_factory, engine)
