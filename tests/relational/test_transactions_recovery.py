"""Tests for DML statements, transactions, the WAL and crash recovery."""

from __future__ import annotations

import pytest

from repro.errors import RecoveryError, TransactionError
from repro.relational.conditions import equals
from repro.relational.database import Database
from repro.relational.dml import Delete, Insert, Update
from repro.relational.recovery import recover_database, replay_into
from repro.relational.wal import LogRecord, LogRecordType, WriteAheadLog


def make_schema() -> Database:
    database = Database()
    database.create_table("Bookings", ["passenger", "flight", "seat"], key=["flight", "seat"])
    return database


@pytest.fixture
def db() -> Database:
    database = make_schema()
    database.insert("Bookings", ("Mickey", 1, "1A"))
    return database


class TestTransactions:
    def test_commit_applies_changes(self, db):
        with db.begin() as txn:
            txn.insert("Bookings", ("Goofy", 1, "1B"))
            txn.delete("Bookings", ("Mickey", 1, "1A"))
        assert db.table("Bookings").get((1, "1B")) is not None
        assert db.table("Bookings").get((1, "1A")) is None

    def test_abort_rolls_back(self, db):
        txn = db.begin()
        txn.insert("Bookings", ("Goofy", 1, "1B"))
        txn.delete("Bookings", ("Mickey", 1, "1A"))
        txn.abort()
        assert db.table("Bookings").get((1, "1B")) is None
        assert db.table("Bookings").get((1, "1A")) is not None

    def test_exception_in_context_manager_aborts(self, db):
        with pytest.raises(RuntimeError):
            with db.begin() as txn:
                txn.insert("Bookings", ("Goofy", 1, "1B"))
                raise RuntimeError("boom")
        assert db.table("Bookings").get((1, "1B")) is None

    def test_use_after_commit_rejected(self, db):
        txn = db.begin()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.insert("Bookings", ("Goofy", 1, "1B"))

    def test_statement_application(self, db):
        db.apply(
            [
                Insert("Bookings", ("Goofy", 1, "1B")),
                Delete("Bookings", ("Mickey", 1, "1A")),
            ]
        )
        assert len(db.table("Bookings")) == 2 - 1 + 1 - 1  # started 1, +1, -1 ... = 1
        assert db.table("Bookings").get((1, "1B")) is not None

    def test_conditional_delete(self, db):
        db.insert("Bookings", ("Goofy", 1, "1B"))
        db.apply(Delete("Bookings", condition=equals("passenger", "Goofy")))
        assert len(db.table("Bookings")) == 1

    def test_update(self, db):
        db.apply(Update("Bookings", {"seat": "2C"}, condition=equals("passenger", "Mickey")))
        assert db.table("Bookings").get((1, "2C"))["passenger"] == "Mickey"
        assert db.table("Bookings").get((1, "1A")) is None


class TestWAL:
    def test_records_appended_in_order(self, db):
        with db.begin() as txn:
            txn.insert("Bookings", ("Goofy", 1, "1B"))
        types = [r.record_type for r in db.wal.records()]
        assert types[-2:] == [LogRecordType.INSERT, LogRecordType.COMMIT]

    def test_committed_ids(self, db):
        txn = db.begin()
        txn.insert("Bookings", ("Goofy", 1, "1B"))
        txn.abort()
        with db.begin() as committed:
            committed.insert("Bookings", ("Minnie", 1, "1C"))
        assert committed.transaction_id in db.wal.committed_transaction_ids()
        assert txn.transaction_id not in db.wal.committed_transaction_ids()

    def test_json_roundtrip(self, db):
        with db.begin() as txn:
            txn.insert("Bookings", ("Goofy", 1, "1B"))
        dumped = db.wal.dump()
        restored = WriteAheadLog.load(dumped)
        assert [r.record_type for r in restored] == [r.record_type for r in db.wal]
        assert [r.values for r in restored] == [r.values for r in db.wal]

    def test_malformed_record_rejected(self):
        with pytest.raises(RecoveryError):
            LogRecord.from_json("{not json")


class TestRecovery:
    def test_recover_committed_only(self):
        database = make_schema()
        with database.begin() as txn:
            txn.insert("Bookings", ("Mickey", 1, "1A"))
        uncommitted = database.begin()
        uncommitted.insert("Bookings", ("Goofy", 1, "1B"))
        # Crash: the uncommitted transaction never commits or aborts.
        recovered = recover_database(make_schema, database.wal)
        rows = recovered.table("Bookings").snapshot()
        assert rows == [("Mickey", 1, "1A")]

    def test_recover_delete(self):
        database = make_schema()
        database.insert("Bookings", ("Mickey", 1, "1A"))
        database.delete("Bookings", ("Mickey", 1, "1A"))
        recovered = recover_database(make_schema, database.wal)
        assert len(recovered.table("Bookings")) == 0

    def test_recovered_database_keeps_logging(self):
        database = make_schema()
        database.insert("Bookings", ("Mickey", 1, "1A"))
        recovered = recover_database(make_schema, database.wal)
        recovered.insert("Bookings", ("Goofy", 1, "1B"))
        twice = recover_database(make_schema, recovered.wal)
        assert len(twice.table("Bookings")) == 2

    def test_corrupt_log_detected(self):
        wal = WriteAheadLog()
        wal.log_begin(1)
        wal.log_delete(1, "Bookings", ("Ghost", 9, "9Z"))
        wal.log_commit(1)
        with pytest.raises(RecoveryError):
            replay_into(make_schema(), wal)


class TestDatabaseFacade:
    def test_snapshot_restore(self, db):
        snapshot = db.snapshot()
        db.delete("Bookings", ("Mickey", 1, "1A"))
        db.restore(snapshot)
        assert db.table("Bookings").get((1, "1A")) is not None

    def test_copy_independent(self, db):
        clone = db.copy()
        clone.insert("Bookings", ("Goofy", 1, "1B"))
        assert len(db.table("Bookings")) == 1
        assert len(clone.table("Bookings")) == 2

    def test_row_count(self, db):
        assert db.row_count() == 1

    def test_drop_table(self, db):
        db.drop_table("Bookings")
        assert not db.has_table("Bookings")
