"""Figure 8 — time split between reads and resource transactions.

The paper fixes a 40-flight database, runs 6000 operations in random order,
and sweeps the read percentage from 0% to 90% for k ∈ {20, 30, 40}.  The
reported quantity is the time spent answering reads and the time spent
executing resource transactions.  Expected shape: as the read fraction
grows, read time increases while update (resource-transaction) time
decreases — partly because there are fewer resource transactions, partly
because reads force pre-emptive grounding, which keeps composed bodies
small and cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.metrics import RunResult
from repro.experiments.report import format_table, print_report
from repro.experiments.runner import run_quantum_mixed
from repro.workloads.flights import FlightDatabaseSpec
from repro.workloads.mixed import generate_mixed_workload


@dataclass(frozen=True)
class MixedParameters:
    """Sweep parameters for Figures 8 and 9.

    Attributes:
        spec: flight database sizing.
        read_percentages: read fractions to sweep (percent).
        ks: quantum database ``k`` values to compare.
        total_operations: fixed total operation count, or ``None`` to submit
            every pair's transactions and add reads on top.
        seed: RNG seed.
    """

    spec: FlightDatabaseSpec = field(
        default_factory=lambda: FlightDatabaseSpec(num_flights=4, rows_per_flight=5)
    )
    read_percentages: tuple[float, ...] = (0.0, 20.0, 40.0, 60.0, 80.0)
    ks: tuple[int, ...] = (2, 4, 8)
    total_operations: int | None = None
    seed: int = 0


@dataclass
class Figure8Result:
    """Read/update time split per k and read percentage."""

    parameters: MixedParameters
    #: (k, read %) → RunResult
    runs: dict[tuple[int, float], RunResult] = field(default_factory=dict)

    def rows(self) -> list[tuple[float, int, float, float]]:
        """(read %, k, update time, read time) rows."""
        rows = []
        for (k, pct), run in sorted(self.runs.items(), key=lambda kv: (kv[0][1], kv[0][0])):
            rows.append((pct, k, run.extra.get("update_time", 0.0), run.extra.get("read_time", 0.0)))
        return rows


def run_figure8(parameters: MixedParameters | None = None) -> Figure8Result:
    """Run the mixed-workload sweep."""
    parameters = parameters or default_parameters()
    result = Figure8Result(parameters=parameters)
    for pct in parameters.read_percentages:
        workload = generate_mixed_workload(
            parameters.spec,
            pct,
            total_operations=parameters.total_operations,
            seed=parameters.seed,
        )
        for k in parameters.ks:
            result.runs[(k, pct)] = run_quantum_mixed(workload, k=k, label=f"k={k}")
    return result


def default_parameters() -> MixedParameters:
    """Scaled-down default sweep."""
    return MixedParameters()


def paper_parameters() -> MixedParameters:
    """The paper's sweep: 40 flights × 50 rows, 6000 operations, k ∈ {20,30,40}."""
    return MixedParameters(
        spec=FlightDatabaseSpec(num_flights=40, rows_per_flight=50),
        read_percentages=tuple(float(p) for p in range(0, 100, 10)),
        ks=(20, 30, 40),
        total_operations=6000,
    )


def main(parameters: MixedParameters | None = None) -> Figure8Result:
    """Run and print Figure 8's series."""
    result = run_figure8(parameters)
    body = format_table(
        ["Read %", "k", "Update time (s)", "Read time (s)"], result.rows()
    )
    print_report("Figure 8: time split under mixed workloads", body)
    return result


if __name__ == "__main__":  # pragma: no cover - manual invocation
    main()
