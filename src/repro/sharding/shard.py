"""Worker shards: disjoint partition ownership plus a plan executor.

Partitions are independent by construction — no atom of one unifies with
any atom of another — so the set of partitions can be split across worker
shards without any cross-shard coordination on the hot path.  A
:class:`Shard` owns a disjoint set of partitions (keyed by partition id,
which is also what the per-partition witness store is keyed by, so witness
state hands off between shards for free) and runs the read-only grounding
*plan* phase for its partitions on its own executor.

The current backend is a thread pool (created lazily, one worker by
default).  The abstraction is deliberately sized for a later process
backend: ownership is tracked purely by partition id, work is submitted as
``submit(fn, *args)`` with picklable-plan-shaped payloads, and nothing on
the interface exposes the executor type.  Swapping
``ThreadPoolExecutor`` for a process pool (plus a partition-state shipping
step) changes this module only.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from typing import TYPE_CHECKING, Any, Callable, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.partition import Partition


class Shard:
    """One worker shard: a disjoint slice of the partition space.

    Attributes:
        shard_id: position of the shard in the manager's shard ring.
        partitions: the owned partitions, keyed by partition id.
    """

    def __init__(self, shard_id: int, *, workers: int = 1) -> None:
        self.shard_id = shard_id
        self.partitions: dict[int, "Partition"] = {}
        self._workers = max(1, workers)
        self._executor: ThreadPoolExecutor | None = None

    # -- ownership -----------------------------------------------------------

    def own(self, partition: "Partition") -> None:
        """Take ownership of a partition."""
        self.partitions[partition.partition_id] = partition

    def disown(self, partition_id: int) -> None:
        """Release ownership of a partition (merge or drop)."""
        self.partitions.pop(partition_id, None)

    def owns(self, partition_id: int) -> bool:
        """True when this shard owns the partition."""
        return partition_id in self.partitions

    def __len__(self) -> int:
        return len(self.partitions)

    def __iter__(self) -> Iterator["Partition"]:
        return iter(self.partitions.values())

    def pending_count(self) -> int:
        """Total pending transactions across the owned partitions."""
        return sum(len(p) for p in self.partitions.values())

    # -- execution -----------------------------------------------------------

    @property
    def started(self) -> bool:
        """True once the shard's executor has been created."""
        return self._executor is not None

    def submit(self, fn: Callable[..., Any], *args: Any) -> "Future[Any]":
        """Run ``fn(*args)`` on this shard's worker (lazily started)."""
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self._workers,
                thread_name_prefix=f"repro-shard-{self.shard_id}",
            )
        return self._executor.submit(fn, *args)

    def close(self) -> None:
        """Shut the shard's executor down (idempotent; ownership survives)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Shard #{self.shard_id} partitions={len(self.partitions)} "
            f"pending={self.pending_count()}>"
        )
