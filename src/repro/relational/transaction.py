"""Transactions on the extensional store.

These are the *ordinary* (non-resource) transactions of the substrate: a
unit of inserts/deletes/updates with atomicity (undo on abort) and
durability (WAL records, commit marker).  The quantum middle tier uses them
for three things:

* installing the extensional effects of a grounded resource transaction,
* persisting/removing entries of the pending-transactions table, and
* running the baseline ("intelligent social") workloads.

Concurrency in the reproduction is logical rather than physical — the whole
system runs single-threaded, as the paper's single-client experiments do —
so the transaction manager enforces well-formedness (no use after
commit/abort, undo in reverse order) rather than latching.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.errors import TransactionError
from repro.relational.dml import Delete, Insert, Statement, Update
from repro.relational.row import Row
from repro.relational.wal import WriteAheadLog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.relational.database import Database


class TransactionStatus(enum.Enum):
    """Lifecycle states of a transaction."""

    ACTIVE = "ACTIVE"
    COMMITTED = "COMMITTED"
    ABORTED = "ABORTED"


class Transaction:
    """A unit of work over a :class:`~repro.relational.database.Database`.

    Usually created through :meth:`Database.begin` and used as a context
    manager::

        with db.begin() as txn:
            txn.insert("Bookings", ("Mickey", 123, "5A"))

    Leaving the ``with`` block commits; an exception aborts and undoes all
    changes.
    """

    def __init__(
        self, database: "Database", transaction_id: int, wal: WriteAheadLog
    ) -> None:
        self.database = database
        self.transaction_id = transaction_id
        self.status = TransactionStatus.ACTIVE
        self._wal = wal
        #: undo list of (operation, table, row) entries, applied in reverse.
        self._undo: list[tuple[str, str, Row]] = []
        self._wal.log_begin(transaction_id)

    # -- state checks -------------------------------------------------------

    def _require_active(self) -> None:
        if self.status is not TransactionStatus.ACTIVE:
            raise TransactionError(
                f"transaction {self.transaction_id} is {self.status.value}, "
                "not ACTIVE"
            )

    @property
    def is_active(self) -> bool:
        """True while the transaction can still accept operations."""
        return self.status is TransactionStatus.ACTIVE

    # -- operations ---------------------------------------------------------

    def insert(
        self, table: str, values: Sequence[Any] | Mapping[str, Any]
    ) -> Row:
        """Insert a row within this transaction."""
        self._require_active()
        row = self.database.table(table).insert(values)
        self._wal.log_insert(self.transaction_id, table, row.values)
        self._undo.append(("insert", table, row))
        return row

    def delete(
        self, table: str, values: Sequence[Any] | Mapping[str, Any]
    ) -> Row:
        """Delete a row (identified by its key) within this transaction."""
        self._require_active()
        row = self.database.table(table).delete(values)
        self._wal.log_delete(self.transaction_id, table, row.values)
        self._undo.append(("delete", table, row))
        return row

    def apply(self, statement: Statement) -> list[Row]:
        """Apply an :class:`Insert`, :class:`Delete` or :class:`Update`.

        Returns the affected rows (for Update, the new row versions).
        """
        self._require_active()
        if isinstance(statement, Insert):
            return [self.insert(statement.table, statement.values)]
        if isinstance(statement, Delete):
            return self._apply_delete(statement)
        if isinstance(statement, Update):
            return self._apply_update(statement)
        raise TransactionError(f"unsupported statement {statement!r}")

    def _apply_delete(self, statement: Delete) -> list[Row]:
        if statement.values is not None:
            return [self.delete(statement.table, statement.values)]
        table = self.database.table(statement.table)
        victims = [
            row
            for row in table.rows()
            if statement.condition is None
            or statement.condition.evaluate(row.as_dict())
        ]
        return [self.delete(statement.table, row.values) for row in victims]

    def _apply_update(self, statement: Update) -> list[Row]:
        table = self.database.table(statement.table)
        victims = [
            row
            for row in table.rows()
            if statement.condition is None
            or statement.condition.evaluate(row.as_dict())
        ]
        new_rows: list[Row] = []
        for row in victims:
            self.delete(statement.table, row.values)
            new_rows.append(
                self.insert(statement.table, row.replace(**statement.assignments).values)
            )
        return new_rows

    # -- lifecycle ----------------------------------------------------------

    def commit(self) -> None:
        """Make all changes durable and end the transaction."""
        self._require_active()
        self._wal.log_commit(self.transaction_id)
        self.status = TransactionStatus.COMMITTED
        self._undo.clear()
        self.database._transaction_finished(self.transaction_id)

    def abort(self) -> None:
        """Undo all changes and end the transaction."""
        self._require_active()
        for operation, table_name, row in reversed(self._undo):
            table = self.database.table(table_name)
            if operation == "insert":
                table.delete(row.values)
            else:
                table.insert(row.values)
        self._wal.log_abort(self.transaction_id)
        self.status = TransactionStatus.ABORTED
        self._undo.clear()
        self.database._transaction_finished(self.transaction_id)

    # -- context manager ----------------------------------------------------

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, traceback) -> bool:
        if exc_type is not None:
            if self.is_active:
                self.abort()
            return False
        if self.is_active:
            self.commit()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Transaction id={self.transaction_id} status={self.status.value} "
            f"ops={len(self._undo)}>"
        )
