"""Calendar-management scenario (Section 1's second motivating example).

Mickey schedules a work offsite months in advance; a higher-priority meeting
lands on the same slot at short notice; with a quantum database the offsite
slot is not fixed until the evening before, so the late meeting causes no
rescheduling cascade.

This module provides:

* a schema and generator for a meeting-slot database
  (``FreeSlot(person, day, slot)``, ``Meetings(meeting, person, day, slot)``,
  ``SameSlot(day, slot, day, slot)`` is unnecessary — co-attendance is
  expressed by sharing variables);
* :func:`make_meeting_request` — a resource transaction booking one common
  free slot for two attendees (the organiser defers the concrete slot);
* :func:`calendar_csp` — the same single-meeting placement problem expressed
  as a finite-domain CSP, used by the calendar example and by tests that
  cross-check the two formulations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.resource_transaction import ResourceTransaction
from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Variable
from repro.relational.database import Database
from repro.relational.datatypes import DataType
from repro.relational.schema import Column
from repro.solver.csp import CSP


@dataclass(frozen=True)
class CalendarSpec:
    """Size parameters of a generated calendar database.

    Attributes:
        people: attendee names.
        days: number of days in the horizon.
        slots_per_day: bookable slots per day.
    """

    people: tuple[str, ...] = ("Mickey", "Donald", "Goofy")
    days: int = 5
    slots_per_day: int = 4

    def slot_pairs(self) -> list[tuple[int, int]]:
        """All (day, slot) combinations."""
        return [
            (day, slot)
            for day in range(1, self.days + 1)
            for slot in range(1, self.slots_per_day + 1)
        ]


def create_calendar_tables(database: Database) -> None:
    """Declare the calendar schema."""
    database.create_table(
        "FreeSlot",
        [
            Column("person", DataType.TEXT),
            Column("day", DataType.INTEGER),
            Column("slot", DataType.INTEGER),
        ],
        key=["person", "day", "slot"],
        indexes=[["person"], ["day", "slot"]],
    )
    database.create_table(
        "Meetings",
        [
            Column("meeting", DataType.TEXT),
            Column("person", DataType.TEXT),
            Column("day", DataType.INTEGER),
            Column("slot", DataType.INTEGER),
        ],
        key=["meeting", "person"],
        indexes=[["person"], ["meeting"]],
    )


def populate_calendar(
    database: Database, spec: CalendarSpec, *, busy: Iterable[tuple[str, int, int]] = ()
) -> None:
    """Mark every slot free for every person, except the ``busy`` triples."""
    blocked = set(busy)
    table = database.table("FreeSlot")
    for person in spec.people:
        for day, slot in spec.slot_pairs():
            if (person, day, slot) not in blocked:
                table.insert((person, day, slot))


def build_calendar_database(
    spec: CalendarSpec | None = None,
    *,
    busy: Iterable[tuple[str, int, int]] = (),
) -> Database:
    """Create and populate a calendar database in one call."""
    spec = spec or CalendarSpec()
    database = Database()
    create_calendar_tables(database)
    populate_calendar(database, spec, busy=busy)
    return database


def make_meeting_request(
    meeting: str,
    organiser: str,
    attendee: str,
    *,
    preferred_day: int | None = None,
) -> ResourceTransaction:
    """A resource transaction booking a common free slot for two people.

    The chosen day/slot is deferred; both attendees' free slots are
    consumed.  A preferred day, when given, is OPTIONAL — the meeting lands
    on that day if possible but is not blocked by it.
    """
    day, slot = Variable("day"), Variable("slot")
    body: list[Atom] = [
        Atom.body("FreeSlot", [Constant(organiser), day, slot]),
        Atom.body("FreeSlot", [Constant(attendee), day, slot]),
    ]
    if preferred_day is not None:
        body.append(
            Atom.body("FreeSlot", [Constant(organiser), Constant(preferred_day), slot], optional=True)
        )
    updates = [
        Atom.delete("FreeSlot", [Constant(organiser), day, slot]),
        Atom.delete("FreeSlot", [Constant(attendee), day, slot]),
        Atom.insert("Meetings", [Constant(meeting), Constant(organiser), day, slot]),
        Atom.insert("Meetings", [Constant(meeting), Constant(attendee), day, slot]),
    ]
    return ResourceTransaction(
        body=tuple(body), updates=tuple(updates), client=organiser, partner=attendee
    )


def calendar_csp(
    database: Database, meetings: Sequence[tuple[str, str, str]]
) -> CSP:
    """The meeting-placement problem as a finite-domain CSP.

    Args:
        database: a calendar database (``FreeSlot`` table).
        meetings: ``(meeting, organiser, attendee)`` triples; each meeting
            gets one variable whose domain is the (day, slot) pairs free for
            both attendees, with an all-different constraint per shared
            attendee (a person cannot be in two meetings at once).

    Used to cross-check the quantum database's groundings on the calendar
    example: any grounding the quantum database picks must be a solution of
    this CSP.
    """
    free: dict[str, set[tuple[int, int]]] = {}
    for row in database.table("FreeSlot"):
        free.setdefault(row["person"], set()).add((row["day"], row["slot"]))
    problem = CSP()
    attendees: dict[str, list[str]] = {}
    for meeting, organiser, attendee in meetings:
        domain = sorted(free.get(organiser, set()) & free.get(attendee, set()))
        problem.add_variable(meeting, domain)
        attendees.setdefault(organiser, []).append(meeting)
        attendees.setdefault(attendee, []).append(meeting)
    for person, person_meetings in attendees.items():
        if len(person_meetings) > 1:
            problem.all_different(person_meetings, name=f"no-clash({person})")
    return problem
