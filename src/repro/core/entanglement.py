"""Entangled resource transactions (Section 5.1).

The evaluation scenario of the paper enhances the travel application "with
the presence of user-defined coordination constraints that are expressed as
entangled queries": Mickey asks to sit next to Goofy, whose transaction may
arrive much later.  The quantum database turns such a request into an
*entangled resource transaction*:

* the coordination constraint (adjacency to the partner's booking) is kept
  OPTIONAL, so Mickey is guaranteed a seat even if Goofy never shows up;
* the transaction stays pending — in a quantum state — until the partner's
  transaction arrives;
* "an entangled resource transaction waiting for its partner is finally
  executed as soon as its partner arrives and no longer remains in a
  quantum state": when both are present the pair is grounded together,
  trying to satisfy the adjacency preferences of both.

:class:`EntangledResourceTransaction` is a resource transaction whose
``client``/``partner`` fields identify the coordination pair.
:class:`EntanglementRegistry` tracks which clients are still waiting and
recognises partner arrivals; :class:`~repro.core.quantum_database.QuantumDatabase`
consults it after every commit and grounds matched pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.resource_transaction import ResourceTransaction
from repro.errors import InvalidTransactionError
from repro.logic.atoms import Atom


class EntangledResourceTransaction(ResourceTransaction):
    """A resource transaction that wants to coordinate with a partner.

    Identical to :class:`ResourceTransaction` except that ``client`` and
    ``partner`` are required, making the coordination intent explicit.
    """

    def __post_init__(self) -> None:  # noqa: D105 - documented on the class
        super().__post_init__()
        if not self.client or not self.partner:
            raise InvalidTransactionError(
                "an entangled resource transaction needs both a client and a partner"
            )


@dataclass
class EntanglementMatch:
    """A matched coordination pair.

    Attributes:
        earlier_id: id of the transaction that was already waiting.
        later_id: id of the transaction whose arrival completed the pair.
    """

    earlier_id: int
    later_id: int

    def transaction_ids(self) -> tuple[int, int]:
        """Both transaction ids, earliest first."""
        return (self.earlier_id, self.later_id)


@dataclass
class EntanglementRegistry:
    """Tracks waiting entangled transactions and recognises partner arrivals."""

    #: transaction id keyed by (client, partner), for transactions whose
    #: partner has not arrived yet.
    waiting: dict[tuple[str, str], int] = field(default_factory=dict)
    #: all matches recognised so far (kept for reporting).
    matches: list[EntanglementMatch] = field(default_factory=list)

    def register(self, transaction: ResourceTransaction) -> EntanglementMatch | None:
        """Register an arrival and return the match it completes, if any.

        Transactions without a client/partner pair are ignored (they are
        ordinary resource transactions).
        """
        if not transaction.client or not transaction.partner:
            return None
        key = (transaction.client, transaction.partner)
        reverse = (transaction.partner, transaction.client)
        if reverse in self.waiting:
            earlier_id = self.waiting.pop(reverse)
            match = EntanglementMatch(earlier_id, transaction.transaction_id)
            self.matches.append(match)
            return match
        self.waiting[key] = transaction.transaction_id
        return None

    def withdraw(self, transaction: ResourceTransaction) -> None:
        """Forget a waiting transaction (e.g. it was rejected or grounded)."""
        if not transaction.client or not transaction.partner:
            return
        key = (transaction.client, transaction.partner)
        if self.waiting.get(key) == transaction.transaction_id:
            del self.waiting[key]

    def waiting_count(self) -> int:
        """Number of transactions still waiting for their partner."""
        return len(self.waiting)

    def matched_count(self) -> int:
        """Number of coordination pairs recognised so far."""
        return len(self.matches)


def make_adjacent_seat_request(
    client: str,
    partner: str,
    *,
    flights_relation: str = "Available",
    bookings_relation: str = "Bookings",
    adjacency_relation: str = "Adjacent",
    flight: int | str | None = None,
) -> EntangledResourceTransaction:
    """Build the paper's running-example transaction programmatically.

    The request books one available seat for ``client`` with an OPTIONAL
    preference for sitting adjacent to ``partner``'s existing booking::

        -Available(f, s), +Bookings(client, f, s)
            :-1 Available(f, s), [Bookings(partner, f, s2)], [Adjacent(s, s2)]

    Args:
        client: the requesting user.
        partner: the user to sit next to, if possible.
        flights_relation / bookings_relation / adjacency_relation: table
            names, overridable for custom schemas.
        flight: pin the request to a specific flight (hard constraint) or
            leave ``None`` to accept any flight.
    """
    from repro.logic.terms import Constant, Variable

    f_term = Constant(flight) if flight is not None else Variable("f")
    seat = Variable("s")
    partner_seat = Variable("s2")
    body = (
        Atom.body(flights_relation, [f_term, seat]),
        Atom.body(bookings_relation, [Constant(partner), f_term, partner_seat], optional=True),
        Atom.body(adjacency_relation, [f_term, seat, partner_seat], optional=True),
    )
    updates = (
        Atom.delete(flights_relation, [f_term, seat]),
        Atom.insert(bookings_relation, [Constant(client), f_term, seat]),
    )
    return EntangledResourceTransaction(
        body=body, updates=updates, client=client, partner=partner
    )
