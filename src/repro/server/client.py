"""A framed asyncio TCP client for the quantum database network server.

:class:`NetClient` is the in-tree counterpart of
:class:`~repro.server.net.NetworkServer`: it speaks the length-prefixed
JSON protocol (:mod:`repro.server.protocol`), matches responses to
requests by ``id``, and rebuilds typed exceptions from ``error`` frames —
so a remote ``tenant_backpressure`` raises
:class:`~repro.errors.TenantBackpressure` exactly like an in-process
session would.

The client is also the reference implementation for other languages:
everything it needs is the frame format and the opcode tables in
:mod:`repro.server.protocol`.

Typical usage::

    client = await NetClient.connect("127.0.0.1", port, client="mickey")
    result = await client.commit(
        "-Available(?f, ?s), +Bookings('Mickey', ?f, ?s)"
        " :-1 Available(?f, ?s)"
    )
    assert result.committed
    await client.close()
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass
from typing import Any, Sequence

from repro.errors import ProtocolError, QuantumError
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    Opcode,
    encode_frame,
    exception_for,
)


@dataclass(frozen=True)
class RemoteCommitResult:
    """Client-side view of one commit decision.

    The wire analogue of :class:`~repro.server.session.AdmissionResult`
    (minus the parsed transaction object, which stays server-side).
    ``grounded`` carries ``{"transaction_id", "valuation"}`` dictionaries
    for transactions grounded as a side effect of this admission.
    """

    transaction_id: int
    committed: bool
    pending: bool
    rejection_reason: str | None
    grounded: tuple[dict[str, Any], ...] = ()
    #: Which admission search decided the submission ("witness",
    #: "fastpath", "backtracking", "bnb", or "sampled").
    method: str = "backtracking"
    #: False when the decision came from the opt-in sampling estimator.
    exact: bool = True

    def __bool__(self) -> bool:
        return self.committed

    @classmethod
    def from_value(cls, value: dict[str, Any]) -> "RemoteCommitResult":
        return cls(
            transaction_id=value["transaction_id"],
            committed=value["committed"],
            pending=value["pending"],
            rejection_reason=value.get("rejection_reason"),
            grounded=tuple(value.get("grounded") or ()),
            method=value.get("method", "backtracking"),
            exact=value.get("exact", True),
        )


class ConnectionClosed(QuantumError):
    """The server closed the connection (drain, protocol kill, or crash)."""


class NetClient:
    """One framed TCP connection to a :class:`~repro.server.net.NetworkServer`.

    Create via :meth:`connect`; usable as an async context manager.  A
    single client handles its requests sequentially on the server (the
    closed-loop model) but may pipeline: every request gets a fresh ``id``
    and the reader task resolves them in any order.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._decoder = FrameDecoder(max_frame_bytes=max_frame_bytes)
        self._max_frame_bytes = max_frame_bytes
        self._ids = itertools.count(1)
        self._pending: dict[int, asyncio.Future] = {}
        self._reader_task: asyncio.Task | None = None
        self._closed = False
        #: Set once the server announced a graceful drain (``goodbye``).
        self.server_said_goodbye = False

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        client: str | None = None,
        tenant: str | None = None,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ) -> "NetClient":
        """Open a connection and bind its session identity via ``hello``.

        Args:
            host / port: the network server's listening address.
            client: user name defaulted into parsed transactions (shows up
                in ``Bookings`` rows exactly like the in-process API).
            tenant: quota group for ``ServerConfig(tenant_quota=...)``.
        """
        reader, writer = await asyncio.open_connection(host, port)
        self = cls(reader, writer, max_frame_bytes=max_frame_bytes)
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )
        await self._call(Opcode.HELLO, client=client, tenant=tenant)
        return self

    async def close(self) -> None:
        """Close the connection; pending requests fail with ConnectionClosed."""
        if self._closed:
            return
        self._closed = True
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        self._fail_pending(ConnectionClosed("client closed the connection"))

    async def __aenter__(self) -> "NetClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    # -- wire plumbing -------------------------------------------------------

    async def _read_loop(self) -> None:
        try:
            while True:
                data = await self._reader.read(65536)
                if not data:
                    self._fail_pending(
                        ConnectionClosed("server closed the connection")
                    )
                    return
                for message in self._decoder.feed(data):
                    self._on_message(message)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self._fail_pending(exc)

    def _on_message(self, message: dict[str, Any]) -> None:
        op = message["op"]
        if op == Opcode.GOODBYE.value:
            self.server_said_goodbye = True
            self._fail_pending(
                ConnectionClosed("server is draining (goodbye received)")
            )
            return
        future = self._pending.pop(message.get("id"), None)
        if future is None or future.done():
            return
        if op == Opcode.ERROR.value:
            future.set_exception(
                exception_for(message.get("code", "error"), message.get("message", ""))
            )
        elif op == Opcode.RESULT.value:
            future.set_result(message.get("value"))
        else:  # pragma: no cover - server never sends request opcodes
            future.set_exception(
                ProtocolError(f"unexpected opcode {op!r} from server")
            )

    def _fail_pending(self, exc: BaseException) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)

    async def _call(self, op: Opcode, **fields: Any) -> Any:
        if self._closed:
            raise ConnectionClosed("client is closed")
        request_id = next(self._ids)
        message = {"op": op.value, "id": request_id}
        message.update(
            {key: value for key, value in fields.items() if value is not None}
        )
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self._writer.write(
            encode_frame(message, max_frame_bytes=self._max_frame_bytes)
        )
        try:
            await self._writer.drain()
        except ConnectionError as exc:
            self._pending.pop(request_id, None)
            raise ConnectionClosed(str(exc)) from exc
        return await future

    # -- operations ----------------------------------------------------------

    async def commit(
        self, text: str, *, client: str | None = None, partner: str | None = None
    ) -> RemoteCommitResult:
        """Submit one resource transaction (text form) and await the decision."""
        value = await self._call(
            Opcode.COMMIT, text=text, client=client, partner=partner
        )
        return RemoteCommitResult.from_value(value)

    async def commit_batch(
        self, transactions: Sequence[str | dict[str, Any]]
    ) -> list[RemoteCommitResult]:
        """Pipeline a batch; items are strings or ``{"text", "client", "partner"}``."""
        value = await self._call(
            Opcode.COMMIT_BATCH, transactions=list(transactions)
        )
        return [RemoteCommitResult.from_value(item) for item in value]

    async def read(
        self,
        request: str,
        terms: Sequence[Any] | None = None,
        *,
        mode: str | None = None,
        select: Sequence[str] | None = None,
        limit: int | None = None,
    ) -> list[dict[str, Any]]:
        """Answer a read query (``mode`` is a :class:`ReadMode` value string)."""
        return await self._call(
            Opcode.READ,
            request=request,
            terms=list(terms) if terms is not None else None,
            mode=mode,
            select=list(select) if select is not None else None,
            limit=limit,
        )

    async def ground(self, transaction_ids: Sequence[int]) -> list[dict[str, Any]]:
        """Collapse specific pending transactions; returns grounding records."""
        return await self._call(
            Opcode.GROUND, transaction_ids=list(transaction_ids)
        )

    async def ground_all(self) -> list[dict[str, Any]]:
        """Collapse every pending transaction."""
        return await self._call(Opcode.GROUND_ALL)

    async def check_in(self, transaction_id: int) -> dict[str, Any] | None:
        """Collapse one transaction and return its valuation record."""
        return await self._call(Opcode.CHECK_IN, transaction_id=transaction_id)

    async def stats(self) -> dict[str, Any]:
        """The server's merged statistics report (``server.*`` + ``net.*``)."""
        return await self._call(Opcode.STATS)

    async def ping(self) -> bool:
        """Liveness check."""
        value = await self._call(Opcode.PING)
        return bool(value.get("pong"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"<NetClient {state} pending={len(self._pending)}>"
