"""Undoable binding trails for destructive-backtracking searches.

The plain :class:`~repro.solver.grounding.GroundingSearch` threads an
*immutable* :class:`~repro.logic.substitution.Substitution` through its
recursion: every unification builds a fresh mapping dict, so backtracking
is free but each forward step pays a full copy.  The branch-and-bound
searcher inverts that trade (cf. pracmln's ``FormulaGrounding`` with its
``utils/undo`` module): one mutable binding store shared by the whole
search, with a *trail* of the variables bound since any chosen mark —
backtracking pops the trail instead of discarding copies.

Correctness contract: :class:`TrailBindings` replays the exact semantics
of :func:`repro.logic.unification.unify_terms` over
:meth:`Substitution.apply_term` — walk both sides by chasing variable
chains, bind the walked (hence unbound) variable representative.  A
successful search path therefore produces bit-for-bit the same final
mapping the immutable chain of ``theta.bind`` calls would have produced,
which is what lets the branch-and-bound strategy promise decisions and
witnesses identical to backtracking.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import SubstitutionError
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Term, Variable


class Trail:
    """The undo log of a destructive search: variables bound, in order.

    ``mark()`` snapshots the current depth; ``undo_to(mark)`` unbinds
    everything bound since — the whole backtrack step, O(bindings undone)
    instead of O(copy).  ``max_depth`` is the high-water mark, surfaced in
    the ``search.undo_depth`` statistic.
    """

    __slots__ = ("_entries", "_bindings", "max_depth")

    def __init__(self, bindings: "TrailBindings") -> None:
        self._entries: list[Variable] = []
        self._bindings = bindings
        self.max_depth = 0

    def __len__(self) -> int:
        return len(self._entries)

    def mark(self) -> int:
        """The current trail depth, to be passed back to :meth:`undo_to`."""
        return len(self._entries)

    def record(self, var: Variable) -> None:
        """Log ``var`` as bound (called by the bindings on every bind)."""
        self._entries.append(var)
        if len(self._entries) > self.max_depth:
            self.max_depth = len(self._entries)

    def undo_to(self, mark: int) -> None:
        """Unbind every variable bound since ``mark`` (newest first)."""
        mapping = self._bindings.mapping
        entries = self._entries
        while len(entries) > mark:
            del mapping[entries.pop()]


class TrailBindings:
    """A mutable substitution with trail-based undo.

    Seeded from an immutable :class:`Substitution` (the initial/witness
    bindings, which are *not* on the trail and can never be undone), then
    grown destructively by :meth:`unify`.  :meth:`snapshot` freezes the
    current state back into an immutable :class:`Substitution` equal to
    the one the copy-per-step search would have built along the same path.
    """

    __slots__ = ("mapping", "trail")

    def __init__(self, initial: Substitution | None = None) -> None:
        self.mapping: dict[Variable, Term] = (
            {var: term for var, term in initial.items()} if initial else {}
        )
        self.trail = Trail(self)

    def walk(self, term: Term) -> Term:
        """Chase variable chains, mirroring ``Substitution.apply_term``."""
        seen: set[Variable] | None = None
        current = term
        mapping = self.mapping
        while isinstance(current, Variable) and current in mapping:
            if seen is None:
                seen = set()
            elif current in seen:
                raise SubstitutionError(f"cyclic substitution through {current!r}")
            seen.add(current)
            current = mapping[current]
        return current

    def unify(self, left: Term, right: Term) -> bool:
        """Destructively unify two terms; mirrors ``unify_terms``.

        Returns False on a constant clash, leaving the bindings untouched
        (walking never mutates; the failed case binds nothing).
        """
        left = self.walk(left)
        right = self.walk(right)
        if left == right:
            return True
        if isinstance(left, Variable):
            self.mapping[left] = right
            self.trail.record(left)
            return True
        if isinstance(right, Variable):
            self.mapping[right] = left
            self.trail.record(right)
            return True
        return False

    def valuation(self) -> dict[str, Any]:
        """Direct constant bindings only, mirroring ``_partial_valuation``.

        Deliberately does *not* chase alias chains: the backtracking
        search's deferred-negation machinery sees only variables bound
        directly to constants, and the trail search must defer and decide
        negations at exactly the same points.
        """
        return {
            var.name: term.value
            for var, term in self.mapping.items()
            if isinstance(term, Constant)
        }

    def items(self) -> Iterator[tuple[Variable, Term]]:
        return iter(self.mapping.items())

    def snapshot(self) -> Substitution:
        """Freeze the current bindings into an immutable substitution."""
        return Substitution(dict(self.mapping))
