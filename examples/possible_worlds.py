"""Possible worlds: the Figure 2 evolution, extensionally and intensionally.

The paper's Figure 2 walks through a single flight (number 123) with three
seats as Mickey, Donald and Minnie submit their transactions:

* Mickey books any seat — three possible worlds;
* Donald books any seat — the worlds multiply;
* Minnie wants to sit next to Mickey — worlds where that is impossible are
  eliminated.

This example enumerates the possible worlds explicitly with
:func:`repro.core.worlds.enumerate_possible_worlds` after each arrival, and
then shows that the intensional quantum database reaches the same
conclusions (same pending count, a grounding drawn from the surviving
worlds) without ever materialising them.  It also prints the composed
transaction bodies of Figure 3.

Run with::

    python examples/possible_worlds.py
"""

from __future__ import annotations

from repro import QuantumDatabase, parse_transaction
from repro.core.composition import compose_sequence
from repro.core.worlds import distinct_extensional_states, enumerate_possible_worlds
from repro.relational.database import Database


def build_database() -> Database:
    """One flight (123) with a single row of three seats 1A / 1B / 1C."""
    database = Database()
    database.create_table("Available", ["flight", "seat"], key=["flight", "seat"])
    database.create_table(
        "Bookings", ["passenger", "flight", "seat"], key=["flight", "seat"]
    )
    database.create_table(
        "Adjacent", ["flight", "seat1", "seat2"], key=["flight", "seat1", "seat2"]
    )
    for seat in ("1A", "1B", "1C"):
        database.insert("Available", (123, seat))
    for left, right in (("1A", "1B"), ("1B", "1A"), ("1B", "1C"), ("1C", "1B")):
        database.insert("Adjacent", (123, left, right))
    return database


MICKEY = "-Available(123, ?s), +Bookings('Mickey', 123, ?s) :-1 Available(123, ?s)"
DONALD = "-Available(123, ?s), +Bookings('Donald', 123, ?s) :-1 Available(123, ?s)"
MINNIE = (
    "-Available(123, ?s), +Bookings('Minnie', 123, ?s) "
    ":-1 Available(123, ?s), Bookings('Mickey', 123, ?m), Adjacent(123, ?s, ?m)"
)


def main() -> None:
    database = build_database()
    arrivals = [
        ("Mickey", parse_transaction(MICKEY, client="Mickey")),
        ("Donald", parse_transaction(DONALD, client="Donald")),
        ("Minnie", parse_transaction(MINNIE, client="Minnie")),
    ]

    print("== Extensional view (Figure 2): worlds after each arrival ==")
    submitted = []
    for name, transaction in arrivals:
        submitted.append(transaction)
        worlds = enumerate_possible_worlds(database, submitted)
        print(
            f"after {name}: {len(worlds)} possible worlds "
            f"({distinct_extensional_states(worlds)} distinct database states)"
        )
    final_worlds = enumerate_possible_worlds(database, submitted)
    print("surviving seatings (Mickey, Donald, Minnie):")
    for world in final_worlds:
        seats = {
            passenger: seat for passenger, _flight, seat in world.table("Bookings")
        }
        print(f"  {seats}")

    print("\n== Composed body (Figure 3 style) ==")
    composed = compose_sequence(submitted, rename=True)
    print(f"  {composed}")

    print("\n== Intensional view: the quantum database ==")
    qdb = QuantumDatabase(build_database())
    for name, transaction in arrivals:
        result = qdb.execute(parse_transaction(
            {"Mickey": MICKEY, "Donald": DONALD, "Minnie": MINNIE}[name], client=name
        ))
        print(f"{name}: committed={result.committed}, pending now {qdb.pending_count}")
    grounded = qdb.ground_all()
    seats = {g.transaction.client: g.valuation["s"] for g in grounded}
    print(f"collapsed seating: {seats}")
    allowed = [
        {p: s for p, _f, s in world.table("Bookings")} for world in final_worlds
    ]
    assert seats in allowed, "the collapse must land in one of the possible worlds"
    print("the chosen seating is one of the enumerated possible worlds ✔")


if __name__ == "__main__":
    main()
