"""Backtracking search for finite-domain CSPs.

A textbook chronological backtracking solver with the standard dynamic
heuristics (minimum remaining values, degree tie-break, optional
least-constraining-value ordering) and forward checking.  Used by the
calendar-scheduling example and by the ablation benchmarks; the quantum
database's own grounding path lives in :mod:`repro.solver.grounding`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Mapping

from repro.solver.csp import CSP
from repro.solver.propagation import ac3, forward_check, initial_domains


@dataclass
class SearchStatistics:
    """Counters describing the work a search performed."""

    assignments: int = 0
    backtracks: int = 0
    solutions: int = 0


class BacktrackingSolver:
    """Chronological backtracking with MRV + forward checking.

    Args:
        use_ac3: run AC-3 preprocessing before the search.
        use_forward_checking: prune neighbour domains after each assignment.
        use_lcv: order values by the least-constraining-value heuristic
            (more expensive per node; off by default).
        max_solutions: stop after this many solutions when enumerating.
    """

    def __init__(
        self,
        *,
        use_ac3: bool = True,
        use_forward_checking: bool = True,
        use_lcv: bool = False,
        max_solutions: int | None = None,
    ) -> None:
        self.use_ac3 = use_ac3
        self.use_forward_checking = use_forward_checking
        self.use_lcv = use_lcv
        self.max_solutions = max_solutions
        self.statistics = SearchStatistics()

    # -- public API ---------------------------------------------------------

    def solve(self, csp: CSP, initial: Mapping[str, Any] | None = None) -> dict[str, Any] | None:
        """Return one solution, or None if the problem is unsatisfiable.

        Args:
            csp: the problem to solve.
            initial: a partial assignment to extend (values are not checked
                against domains, only against constraints).
        """
        for solution in self.solutions(csp, initial=initial):
            return solution
        return None

    def solutions(
        self, csp: CSP, initial: Mapping[str, Any] | None = None
    ) -> Iterator[dict[str, Any]]:
        """Yield solutions one by one (up to ``max_solutions``)."""
        self.statistics = SearchStatistics()
        assignment = dict(initial or {})
        if not csp.is_consistent(assignment):
            return
        domains = initial_domains(csp)
        for var, value in assignment.items():
            if var in domains:
                domains[var] = [value]
        if self.use_ac3:
            consistent, domains = ac3(csp, domains)
            if not consistent:
                return
        yield from self._search(csp, assignment, domains)

    # -- search -------------------------------------------------------------

    def _search(
        self,
        csp: CSP,
        assignment: dict[str, Any],
        domains: Mapping[str, list[Any]],
    ) -> Iterator[dict[str, Any]]:
        if csp.is_complete(assignment):
            self.statistics.solutions += 1
            yield dict(assignment)
            return
        if (
            self.max_solutions is not None
            and self.statistics.solutions >= self.max_solutions
        ):
            return
        variable = self._select_variable(csp, assignment, domains)
        for value in self._order_values(csp, assignment, domains, variable):
            self.statistics.assignments += 1
            assignment[variable] = value
            if csp.is_consistent(assignment):
                if self.use_forward_checking:
                    ok, pruned = forward_check(csp, domains, assignment, variable)
                else:
                    ok, pruned = True, dict(domains)
                if ok:
                    yield from self._search(csp, assignment, pruned)
                    if (
                        self.max_solutions is not None
                        and self.statistics.solutions >= self.max_solutions
                    ):
                        del assignment[variable]
                        return
            del assignment[variable]
            self.statistics.backtracks += 1

    def _select_variable(
        self,
        csp: CSP,
        assignment: Mapping[str, Any],
        domains: Mapping[str, list[Any]],
    ) -> str:
        """MRV with degree tie-break."""
        unassigned = [v for v in csp.variables if v not in assignment]
        return min(
            unassigned,
            key=lambda v: (len(domains[v]), -len(csp.neighbors(v))),
        )

    def _order_values(
        self,
        csp: CSP,
        assignment: Mapping[str, Any],
        domains: Mapping[str, list[Any]],
        variable: str,
    ) -> list[Any]:
        values = list(domains[variable])
        if not self.use_lcv:
            return values

        def eliminated(value: Any) -> int:
            trial = dict(assignment)
            trial[variable] = value
            count = 0
            for neighbor in csp.neighbors(variable):
                if neighbor in assignment:
                    continue
                for candidate in domains[neighbor]:
                    trial[neighbor] = candidate
                    if not csp.is_consistent(trial):
                        count += 1
                del trial[neighbor]
            return count

        return sorted(values, key=eliminated)
