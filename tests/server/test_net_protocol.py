"""Property and fuzz tests for the framed wire protocol codec.

The codec (:mod:`repro.server.protocol`) is pure — bytes in, messages
out — so these tests hammer it without a running server: round-trips for
every opcode, arbitrary read-boundary splits (the decoder must reassemble
frames fed one byte at a time exactly as fed all at once), and hostile
inputs (truncated frames, garbage bytes, oversized length declarations)
that must produce a *typed* error, never an unhandled exception.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    FrameCorrupt,
    FrameTooLarge,
    ProtocolError,
    QuantumError,
    SessionBackpressure,
    TenantBackpressure,
)
from repro.server.protocol import (
    ERROR_CODES,
    HEADER,
    MAX_FRAME_BYTES,
    FrameDecoder,
    Opcode,
    decode_payload,
    encode_frame,
    error_code_for,
    error_frame,
    exception_for,
    result_frame,
)

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

#: JSON-safe scalar values.
json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.text(max_size=40),
)

#: Shallow JSON-safe values (scalars, lists, dicts) for message fields.
json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=10), children, max_size=4),
    ),
    max_leaves=10,
)

#: Arbitrary protocol messages: a valid opcode plus arbitrary fields.
messages = st.builds(
    lambda op, fields: {**fields, "op": op.value},
    st.sampled_from(list(Opcode)),
    st.dictionaries(
        st.text(min_size=1, max_size=10).filter(lambda k: k != "op"),
        json_values,
        max_size=5,
    ),
)


def chunked(data: bytes, cut_points: list[int]) -> list[bytes]:
    """Split ``data`` at the given sorted positions."""
    chunks, start = [], 0
    for point in sorted(set(cut_points)):
        chunks.append(data[start:point])
        start = point
    chunks.append(data[start:])
    return [c for c in chunks if c]


# ---------------------------------------------------------------------------
# Round trips
# ---------------------------------------------------------------------------


class TestRoundTrip:
    @pytest.mark.parametrize("op", list(Opcode))
    def test_every_opcode_round_trips(self, op):
        message = {"op": op.value, "id": 7, "payload": ["x", 1, None]}
        frames = FrameDecoder().feed(encode_frame(message))
        assert frames == [message]

    @given(message=messages)
    @settings(max_examples=200, deadline=None)
    def test_arbitrary_messages_round_trip(self, message):
        frames = FrameDecoder().feed(encode_frame(message))
        assert frames == [message]

    @given(batch=st.lists(messages, min_size=1, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_concatenated_frames_round_trip(self, batch):
        stream = b"".join(encode_frame(m) for m in batch)
        assert FrameDecoder().feed(stream) == batch


class TestReadBoundarySplits:
    """The decoder must be insensitive to how the byte stream is chunked."""

    @given(
        batch=st.lists(messages, min_size=1, max_size=4),
        data=st.data(),
    )
    @settings(max_examples=150, deadline=None)
    def test_arbitrary_splits(self, batch, data):
        stream = b"".join(encode_frame(m) for m in batch)
        cuts = data.draw(
            st.lists(
                st.integers(min_value=1, max_value=max(1, len(stream) - 1)),
                max_size=8,
            )
        )
        decoder = FrameDecoder()
        received = []
        for chunk in chunked(stream, cuts):
            received.extend(decoder.feed(chunk))
        assert received == batch
        assert decoder.buffered == 0

    def test_one_byte_at_a_time(self):
        message = {"op": "commit", "id": 1, "text": "-A(?x) :-1 A(?x)"}
        stream = encode_frame(message)
        decoder = FrameDecoder()
        received = []
        for i in range(len(stream)):
            received.extend(decoder.feed(stream[i : i + 1]))
            if i < len(stream) - 1:
                assert received == []
                assert decoder.buffered == i + 1
        assert received == [message]

    def test_half_frame_stays_buffered(self):
        stream = encode_frame({"op": "ping", "id": 3})
        decoder = FrameDecoder()
        assert decoder.feed(stream[: len(stream) // 2]) == []
        assert decoder.buffered == len(stream) // 2
        assert decoder.feed(stream[len(stream) // 2 :]) == [
            {"op": "ping", "id": 3}
        ]


# ---------------------------------------------------------------------------
# Hostile input
# ---------------------------------------------------------------------------


class TestHostileInput:
    def test_oversized_declaration_rejected_before_payload(self):
        decoder = FrameDecoder(max_frame_bytes=1024)
        with pytest.raises(FrameTooLarge):
            # Only the header arrives; the decoder must not wait for 2 GiB.
            decoder.feed(HEADER.pack(1 << 31))

    def test_oversized_payload_rejected_at_encode_time(self):
        with pytest.raises(FrameTooLarge):
            encode_frame(
                {"op": "commit", "text": "x" * 200}, max_frame_bytes=64
            )

    def test_default_bound_is_one_mib(self):
        with pytest.raises(FrameTooLarge):
            FrameDecoder().feed(HEADER.pack(MAX_FRAME_BYTES + 1))
        assert FrameDecoder().feed(HEADER.pack(MAX_FRAME_BYTES)) == []

    @given(garbage=st.binary(min_size=0, max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_garbage_never_escapes_typed_errors(self, garbage):
        decoder = FrameDecoder(max_frame_bytes=4096)
        try:
            decoder.feed(garbage)
        except ProtocolError:
            pass  # typed: FrameTooLarge or FrameCorrupt

    def test_non_utf8_payload_is_corrupt(self):
        payload = b"\xff\xfe\x01"
        with pytest.raises(FrameCorrupt):
            FrameDecoder().feed(HEADER.pack(len(payload)) + payload)

    def test_non_object_json_is_corrupt(self):
        payload = json.dumps([1, 2, 3]).encode()
        with pytest.raises(FrameCorrupt):
            FrameDecoder().feed(HEADER.pack(len(payload)) + payload)

    def test_unknown_opcode_is_corrupt(self):
        payload = json.dumps({"op": "dance"}).encode()
        with pytest.raises(FrameCorrupt):
            FrameDecoder().feed(HEADER.pack(len(payload)) + payload)

    def test_missing_opcode_is_corrupt(self):
        payload = json.dumps({"id": 1}).encode()
        with pytest.raises(FrameCorrupt):
            FrameDecoder().feed(HEADER.pack(len(payload)) + payload)

    def test_encode_rejects_invalid_opcode(self):
        with pytest.raises(ProtocolError):
            encode_frame({"op": "dance"})
        with pytest.raises(ProtocolError):
            encode_frame({"id": 1})

    def test_encode_rejects_unserializable_message(self):
        with pytest.raises(ProtocolError):
            encode_frame({"op": "commit", "payload": object()})

    def test_decode_payload_direct(self):
        with pytest.raises(FrameCorrupt):
            decode_payload(b"not json at all")


# ---------------------------------------------------------------------------
# Error frames
# ---------------------------------------------------------------------------


class TestErrorFrames:
    def test_subclasses_precede_bases(self):
        # The mapping is walked in order, so a subclass listed after its
        # base would be unreachable.
        types = [exc_type for exc_type, _ in ERROR_CODES]
        for i, exc_type in enumerate(types):
            for later in types[i + 1 :]:
                assert not issubclass(later, exc_type) or later is exc_type, (
                    f"{later.__name__} is shadowed by {exc_type.__name__}"
                )

    @pytest.mark.parametrize("exc_type,code", list(ERROR_CODES))
    def test_codes_round_trip_to_typed_exceptions(self, exc_type, code):
        assert error_code_for(exc_type("boom")) == code
        rebuilt = exception_for(code, "boom")
        assert isinstance(rebuilt, exc_type)
        assert str(rebuilt) == "boom"

    def test_tenant_before_session_backpressure(self):
        # Both are QuantumError subclasses; the distinct rungs of the
        # ladder must keep distinct wire codes.
        assert error_code_for(TenantBackpressure("t")) == "tenant_backpressure"
        assert error_code_for(SessionBackpressure("s")) == "session_backpressure"

    def test_foreign_exception_maps_to_internal(self):
        assert error_code_for(ValueError("nope")) == "internal"
        assert isinstance(exception_for("internal", "nope"), QuantumError)
        assert isinstance(exception_for("draining", "bye"), QuantumError)

    def test_error_frame_from_exception_and_code(self):
        frame = error_frame(9, TenantBackpressure("over quota"))
        assert frame == {
            "op": "error",
            "id": 9,
            "code": "tenant_backpressure",
            "message": "over quota",
        }
        frame = error_frame(None, "draining", "bye")
        assert frame["code"] == "draining" and frame["id"] is None

    def test_result_frame_echoes_id(self):
        frame = result_frame(42, {"pong": True})
        assert frame == {"op": "result", "id": 42, "value": {"pong": True}}
        # Frames are themselves encodable.
        assert FrameDecoder().feed(encode_frame(frame)) == [frame]
