# Developer entry points for the quantum-database reproduction.
#
#   make check   - tier-1 tests + benchmark smoke pass + doc doctests
#   make test    - tier-1 test suite only (tests/)
#   make smoke   - the smoke-marked benchmark subset (-m smoke)
#   make docs    - doctest the README / architecture code blocks
#   make bench   - the full benchmark suite (regenerates every figure/table)
#
# Set REPRO_BENCH_SCALE=paper for the paper-sized benchmark parameters.
# The smoke pass refreshes BENCH_admission.json (admission throughput and
# merged_for scan counts per shard count), tracking the admission-path
# perf trajectory across PRs.

PYTHON ?= python
PYTEST = PYTHONPATH=src $(PYTHON) -m pytest

.PHONY: check test smoke docs bench

check: test smoke docs

test:
	$(PYTEST) -x -q tests

smoke:
	$(PYTEST) -q benchmarks -m smoke

docs:
	PYTHONPATH=src $(PYTHON) -m doctest README.md docs/architecture.md

bench:
	$(PYTEST) -q benchmarks
