# Developer entry points for the quantum-database reproduction.
#
#   make check    - tier-1 tests + smoke benchmarks + doctests + loadtest
#                   + recovery benchmark + search benchmark + gate
#   make test     - tier-1 test suite only (tests/)
#   make smoke    - the smoke-marked benchmark subset (-m smoke)
#   make docs     - doctest the README / architecture code blocks
#   make loadtest - closed-loop TCP load harness at smoke scale (64 clients)
#   make recoverbench - segmented-WAL recovery benchmark ("durability" section)
#   make searchbench  - admission-search strategy benchmark ("search" section)
#   make gate     - perf-regression gate: fresh BENCH_admission.json vs HEAD's
#   make lint     - ruff lint (and format check on the gated paths)
#   make bench    - the full benchmark suite (regenerates every figure/table)
#
# Set REPRO_BENCH_SCALE=paper for the paper-sized benchmark parameters.
# The smoke pass refreshes BENCH_admission.json (admission throughput and
# merged_for scan counts per (shard count, backend, lanes) point),
# tracking the admission-path perf trajectory across PRs; `make gate`
# fails the build if it regressed against the committed baseline
# (BENCH_GATE_TOLERANCE overrides the default 30% throughput tolerance;
# decision divergence always fails), if the baseline's workload scale or
# parameters don't match the fresh run, or if a run lacks the unsharded
# normalization anchor.  The gate's own exit-code semantics are pinned by
# tests/scripts/test_bench_gate.py, which `make test` picks up with the
# rest of tests/.  CI runs `make lint` + `make check`, then reruns the
# gate with --require-points so a vacuous comparison fails too.

PYTHON ?= python
PYTEST = PYTHONPATH=src $(PYTHON) -m pytest

# Paths under `ruff format --check`; grows as files are normalized.
FORMAT_PATHS = src/repro/sharding/backend.py scripts

.PHONY: check test smoke docs loadtest recoverbench searchbench gate lint bench

check: test smoke docs loadtest recoverbench searchbench gate

test:
	$(PYTEST) -x -q tests

smoke:
	$(PYTEST) -q benchmarks -m smoke

docs:
	PYTHONPATH=src $(PYTHON) -m doctest README.md docs/architecture.md

# Smoke-scale end-to-end check of the network layer: 64 concurrent TCP
# clients against an in-process server, exiting non-zero on any dropped
# or errored commit.  The gated latency percentiles come from the
# benchmark suite (`make smoke`); this target proves the harness itself
# stays healthy.  Scale it up by hand with --clients 1000.
loadtest:
	PYTHONPATH=src $(PYTHON) scripts/load_client.py --clients 64

# Durability engine benchmark: twin churn workloads (legacy monolithic
# log vs. segmented WAL), checkpoint-pause comparison, compaction reclaim
# and a timed cold recovery — merged into BENCH_admission.json under
# "durability" for the gate.  Depends on smoke because both emitters
# read-modify-write the same JSON file (`make -j` must not interleave
# them).
recoverbench: smoke
	$(PYTEST) -q benchmarks/test_recovery.py -m recovery

# Admission-search strategy benchmark: branch-and-bound vs. the seed
# backtracking searcher on the Figure 7 workload (bit-identical decisions,
# admission-node ratio <= 0.5) plus the sampled-admission latency point —
# merged into BENCH_admission.json under "search" for the gate.  Depends
# on recoverbench because every emitter read-modify-writes the same JSON
# file (`make -j` must not interleave them).
searchbench: recoverbench
	$(PYTEST) -q benchmarks/test_admission_search.py -m search

# Depends on the whole emitter chain so the gate always compares a freshly
# emitted BENCH_admission.json — every section regenerated, never a stale
# working-tree copy (and `make -j` cannot run them out of order).
gate: smoke recoverbench searchbench
	$(PYTHON) scripts/bench_gate.py

lint:
	$(PYTHON) -m ruff check src tests benchmarks scripts
	$(PYTHON) -m ruff format --check $(FORMAT_PATHS)

bench:
	$(PYTEST) -q benchmarks
