"""Condition AST for filtering rows in queries and DML statements.

Conditions are small expression trees over column references and constants.
They are deliberately minimal — equality, ordering comparisons, conjunction,
disjunction and negation — because that is all a composed resource
transaction body requires once unification predicates have been translated
into equality constraints.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.errors import FormulaError

#: Comparison operators supported by :class:`Comparison`.
_OPERATORS: dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class Condition:
    """Base class of the condition AST."""

    def evaluate(self, bindings: Mapping[str, Any]) -> bool:
        """Evaluate the condition under a column-name → value binding."""
        raise NotImplementedError

    def references(self) -> frozenset[str]:
        """The set of column references used by this condition."""
        raise NotImplementedError

    # Convenient combinators -------------------------------------------------

    def __and__(self, other: "Condition") -> "Condition":
        return Conjunction((self, other))

    def __or__(self, other: "Condition") -> "Condition":
        return Disjunction((self, other))

    def __invert__(self) -> "Condition":
        return Negation(self)


@dataclass(frozen=True)
class ColumnRef(Condition):
    """A reference to a (possibly alias-qualified) column.

    ColumnRefs are operands, not boolean conditions; evaluating one returns
    its bound value.
    """

    name: str

    def evaluate(self, bindings: Mapping[str, Any]) -> Any:
        if self.name not in bindings:
            raise FormulaError(f"unbound column reference {self.name!r}")
        return bindings[self.name]

    def references(self) -> frozenset[str]:
        return frozenset({self.name})


@dataclass(frozen=True)
class Constant(Condition):
    """A literal operand."""

    value: Any

    def evaluate(self, bindings: Mapping[str, Any]) -> Any:
        return self.value

    def references(self) -> frozenset[str]:
        return frozenset()


@dataclass(frozen=True)
class Comparison(Condition):
    """A binary comparison between two operands (column refs or constants)."""

    op: str
    left: Condition
    right: Condition

    def __post_init__(self) -> None:
        if self.op not in _OPERATORS:
            raise FormulaError(f"unsupported comparison operator {self.op!r}")

    def evaluate(self, bindings: Mapping[str, Any]) -> bool:
        left = self.left.evaluate(bindings)
        right = self.right.evaluate(bindings)
        if left is None or right is None:
            # SQL-ish semantics: comparisons against NULL are false.
            return False
        return _OPERATORS[self.op](left, right)

    def references(self) -> frozenset[str]:
        return self.left.references() | self.right.references()


@dataclass(frozen=True)
class Conjunction(Condition):
    """Logical AND over sub-conditions (true when empty)."""

    parts: tuple[Condition, ...]

    def evaluate(self, bindings: Mapping[str, Any]) -> bool:
        return all(part.evaluate(bindings) for part in self.parts)

    def references(self) -> frozenset[str]:
        refs: frozenset[str] = frozenset()
        for part in self.parts:
            refs |= part.references()
        return refs


@dataclass(frozen=True)
class Disjunction(Condition):
    """Logical OR over sub-conditions (false when empty)."""

    parts: tuple[Condition, ...]

    def evaluate(self, bindings: Mapping[str, Any]) -> bool:
        return any(part.evaluate(bindings) for part in self.parts)

    def references(self) -> frozenset[str]:
        refs: frozenset[str] = frozenset()
        for part in self.parts:
            refs |= part.references()
        return refs


@dataclass(frozen=True)
class Negation(Condition):
    """Logical NOT of a sub-condition."""

    inner: Condition

    def evaluate(self, bindings: Mapping[str, Any]) -> bool:
        return not self.inner.evaluate(bindings)

    def references(self) -> frozenset[str]:
        return self.inner.references()


def equals(column: str, value: Any) -> Comparison:
    """Shorthand for ``column = value`` against a literal."""
    return Comparison("=", ColumnRef(column), Constant(value))


def column_equals(left: str, right: str) -> Comparison:
    """Shorthand for an equi-join condition ``left = right``."""
    return Comparison("=", ColumnRef(left), ColumnRef(right))


def conjoin(conditions: Sequence[Condition]) -> Condition:
    """AND together a sequence of conditions (TRUE when empty)."""
    parts = tuple(conditions)
    if len(parts) == 1:
        return parts[0]
    return Conjunction(parts)
