"""Tests for the intelligent-social and eager baselines."""

from __future__ import annotations


from repro.baselines.eager import EagerClient
from repro.baselines.intelligent_social import IntelligentSocialClient
from repro import make_adjacent_seat_request
from tests.conftest import make_tiny_flight_db


class TestIntelligentSocial:
    def test_books_adjacent_when_partner_present(self):
        database = make_tiny_flight_db(seats=3)
        client = IntelligentSocialClient(database)
        first = client.book("Goofy", "Mickey", flight=123)
        assert first.succeeded and not first.adjacent_to_partner
        second = client.book("Mickey", "Goofy", flight=123)
        assert second.adjacent_to_partner
        assert client.coordinated_pairs() == 2
        assert client.coordination_percentage() == 100.0

    def test_keeps_neighbour_free_when_partner_absent(self):
        database = make_tiny_flight_db(seats=3)
        client = IntelligentSocialClient(database)
        booking = client.book("Goofy", "Mickey", flight=123)
        # The chosen seat must still have a free adjacent seat.
        free = {row["seat"] for row in database.table("Available")}
        adjacent = {
            row["seat2"]
            for row in database.table("Adjacent")
            if row["seat1"] == booking.seat
        }
        assert adjacent & free

    def test_falls_back_to_any_seat(self):
        database = make_tiny_flight_db(seats=2)
        client = IntelligentSocialClient(database)
        client.book("A", None, flight=123)
        client.book("B", None, flight=123)
        # Flight now full: a partnered user books nothing.
        result = client.book("C", "A", flight=123)
        assert not result.succeeded

    def test_early_booker_can_lose_coordination(self):
        # The paper's motivating failure: without deferral, an interloper can
        # take the seat the early booker was keeping for their friend.
        database = make_tiny_flight_db(seats=3)
        client = IntelligentSocialClient(database)
        first = client.book("Goofy", "Mickey", flight=123)
        # An unrelated walk-up takes the seat adjacent to Goofy.
        adjacent = next(
            row["seat2"]
            for row in database.table("Adjacent")
            if row["seat1"] == first.seat
            and database.table("Available").get((123, row["seat2"])) is not None
        )
        with database.begin() as txn:
            txn.delete("Available", (123, adjacent))
            txn.insert("Bookings", ("Walkup", 123, adjacent))
        second = client.book("Mickey", "Goofy", flight=123)
        assert second.succeeded
        coordination = client.coordination_percentage()
        assert coordination < 100.0

    def test_works_without_flight_pinning(self):
        database = make_tiny_flight_db(seats=3)
        client = IntelligentSocialClient(database)
        booking = client.book("Mickey", None)
        assert booking.succeeded and booking.flight == 123


class TestEagerBaseline:
    def test_executes_immediately(self):
        database = make_tiny_flight_db(seats=3)
        client = EagerClient(database)
        result = client.execute(make_adjacent_seat_request("Mickey", "Goofy", flight=123))
        assert result.executed
        assert len(database.table("Bookings")) == 1

    def test_cannot_coordinate_with_future_partner(self):
        database = make_tiny_flight_db(seats=3)
        client = EagerClient(database)
        first = client.execute(make_adjacent_seat_request("Mickey", "Goofy", flight=123))
        second = client.execute(make_adjacent_seat_request("Goofy", "Mickey", flight=123))
        # Goofy (arriving second) can satisfy his preference; Mickey could not
        # at the time he executed (his partner's booking did not exist yet).
        assert not first.coordinated
        assert second.satisfied_optionals == 2 and second.coordinated

    def test_aborts_when_no_grounding(self):
        database = make_tiny_flight_db(seats=1)
        client = EagerClient(database)
        assert client.execute(make_adjacent_seat_request("A", "B", flight=123)).executed
        result = client.execute(make_adjacent_seat_request("B", "A", flight=123))
        assert not result.executed

    def test_coordination_percentage(self):
        database = make_tiny_flight_db(seats=3)
        client = EagerClient(database)
        client.execute(make_adjacent_seat_request("Mickey", "Goofy", flight=123))
        client.execute(make_adjacent_seat_request("Goofy", "Mickey", flight=123))
        assert client.coordination_percentage() == 50.0
