"""Exception hierarchy shared across the quantum database reproduction.

Every subpackage raises exceptions derived from :class:`ReproError` so that
applications embedding the library can catch a single base class.  The
hierarchy mirrors the layering of the system:

* ``relational`` errors concern the extensional store (schema violations,
  key conflicts, planner limits, transaction aborts).
* ``logic`` errors concern malformed terms, atoms, or substitutions.
* ``solver`` errors concern unsatisfiable or ill-posed constraint problems.
* ``core`` (quantum database) errors concern resource-transaction admission,
  grounding, and recovery.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` package."""


# ---------------------------------------------------------------------------
# Relational substrate
# ---------------------------------------------------------------------------


class RelationalError(ReproError):
    """Base class for errors raised by :mod:`repro.relational`."""


class SchemaError(RelationalError):
    """A table or column definition is invalid or referenced incorrectly."""


class UnknownTableError(SchemaError):
    """A statement referenced a table that is not in the catalog."""


class UnknownColumnError(SchemaError):
    """A statement referenced a column that does not exist on its table."""


class TypeMismatchError(SchemaError):
    """A value does not conform to the declared column type."""


class KeyViolationError(RelationalError):
    """An insert would duplicate a primary-key value (set semantics)."""


class MissingRowError(RelationalError):
    """A delete or update targeted a row that does not exist."""


class PlannerError(RelationalError):
    """The query planner could not produce a plan (e.g. join limit hit)."""


class JoinLimitExceededError(PlannerError):
    """A query references more atoms than the engine's join limit.

    This mirrors MySQL's 61-table join limit that the paper's prototype
    inherits; the quantum database keeps composed bodies below the limit by
    forcibly grounding pending transactions.
    """


class TransactionError(RelationalError):
    """A transaction on the extensional store failed or was misused."""


class TransactionAborted(TransactionError):
    """The transaction was rolled back (explicitly or by a conflict)."""


class RecoveryError(RelationalError):
    """Write-ahead-log replay or snapshot restore failed."""


class DurabilityError(RelationalError):
    """The segmented durability engine was misconfigured or misused.

    Raised by :mod:`repro.storage` for configuration errors (e.g. a
    segmented :class:`~repro.storage.DurabilityConfig` without a
    directory) and for operations the segmented engine cannot honour
    (e.g. a delta checkpoint before any base snapshot exists).  On-disk
    damage discovered during replay keeps raising :class:`RecoveryError`.
    """


# ---------------------------------------------------------------------------
# Logic layer
# ---------------------------------------------------------------------------


class LogicError(ReproError):
    """Base class for errors raised by :mod:`repro.logic`."""


class UnificationError(LogicError):
    """Two atoms could not be unified when a unifier was required."""


class SubstitutionError(LogicError):
    """A substitution is inconsistent (a variable bound to two values)."""


class FormulaError(LogicError):
    """A formula is malformed or evaluated with unbound variables."""


# ---------------------------------------------------------------------------
# Solver layer
# ---------------------------------------------------------------------------


class SolverError(ReproError):
    """Base class for errors raised by :mod:`repro.solver`."""


class InconsistentProblemError(SolverError):
    """A constraint problem is trivially inconsistent (empty domain)."""


class GroundingError(SolverError):
    """No grounding could be found when one was required to exist."""


# ---------------------------------------------------------------------------
# Quantum database (core)
# ---------------------------------------------------------------------------


class QuantumError(ReproError):
    """Base class for errors raised by :mod:`repro.core`."""


class ParseError(QuantumError):
    """A resource transaction's textual representation is malformed."""


class InvalidTransactionError(QuantumError):
    """A resource transaction violates a structural rule.

    Examples: range restriction (an update variable that does not occur in
    the body), reads inside the FOLLOWED BY block, or an empty update
    portion.
    """


class TransactionRejected(QuantumError):
    """Admitting the transaction would empty the set of possible worlds."""


class AdmissionSearchExhausted(TransactionRejected):
    """The admission search hit its configured node budget undecided.

    A typed outcome for ``AdmissionSearchConfig(node_budget=...)``: the
    search gave up before proving satisfiability either way, so the
    transaction is rejected *conservatively* — the invariant is never at
    risk, but callers that want to retry with a larger budget (or force a
    grounding) can distinguish this from a genuine unsatisfiability.
    Subclasses :class:`TransactionRejected`, so existing handlers keep
    working unchanged.
    """


class WriteRejected(QuantumError):
    """A blind write would invalidate a pending transaction's invariant."""


class QuantumStateError(QuantumError):
    """The quantum state violates its invariant (internal error)."""


class GroundingTimeout(QuantumError):
    """A fanned-out grounding plan future did not finish within the bound.

    Raised by :meth:`repro.core.quantum_state.QuantumState.ground` when a
    plan running on a shard executor (thread or process worker) exceeds the
    configured timeout.  The plan phase is read-only and the timeout fires
    *before* any apply phase runs, so the database state is unchanged: the
    targeted transactions stay pending and can be grounded again.  The
    server uses this (``ServerConfig(grounding_timeout_s=...)``) so a hung
    worker cannot wedge the single writer.
    """


class AdmissionLaneSaturated(QuantumError):
    """A lane dispatch timed out because the target lane's queue stayed full.

    Raised by :meth:`repro.sharding.admission_lane.AdmissionLane.put` when a
    bounded lane queue did not open up within the dispatch timeout.  The
    dispatcher never holds the routing lock while waiting on a full queue
    (the wait happens strictly outside it), so a saturated lane slows only
    its own arrivals — routing, the other lanes, and the signature index
    stay live.  The admission controller treats the error as an escalation
    rung: it drains every lane and runs the arrival serialized instead of
    failing the submission.
    """


class SessionBackpressure(QuantumError):
    """A session exceeded its per-session queue quota.

    Raised by the server instead of letting one client's backlog occupy
    the whole admission queue and starve other sessions.  The submission
    was *not* enqueued; the client should retry after its in-flight
    operations complete.
    """


class TenantBackpressure(QuantumError):
    """A tenant exceeded its per-tenant queue quota.

    One rung above :class:`SessionBackpressure` on the backpressure ladder
    (session quota → tenant quota → connection write buffer): a tenant is a
    named group of sessions — typically every network connection opened
    with the same ``tenant`` identity — and
    ``ServerConfig(tenant_quota=N)`` caps the group's *combined*
    queued-but-unprocessed items.  A tenant that opens many connections
    cannot multiply its share of the admission queue; the submission was
    not enqueued, and the network layer maps the error to a
    ``tenant_backpressure`` protocol error frame so remote clients can
    back off.
    """


class ProtocolError(QuantumError):
    """A network peer violated the framed wire protocol.

    Raised by the frame codec (:mod:`repro.server.protocol`) while
    decoding bytes from a socket.  The server answers with a final
    ``protocol_error`` frame when possible and closes the connection
    cleanly — a malformed peer can never leave an unhandled exception in
    the writer loop or wedge other connections.
    """


class FrameTooLarge(ProtocolError):
    """An incoming frame declared a length beyond the configured maximum.

    The length prefix is read before the payload, so an oversized (or
    garbage) declaration is rejected without ever buffering the body —
    a hostile peer cannot make the server allocate unbounded memory.
    """


class FrameCorrupt(ProtocolError):
    """An incoming frame's payload was not a valid protocol message.

    Covers undecodable bytes (not UTF-8 JSON), well-formed JSON that is
    not an object, and objects without a known ``op`` code.
    """


class QuantumRecoveryError(QuantumError):
    """The pending-transactions table could not be restored after a crash."""
