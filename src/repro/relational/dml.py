"""Data-manipulation statements: Insert, Delete, Update.

Resource transactions only need *blind writes* (single-tuple inserts and
deletes in the ``FOLLOWED BY`` block), but the experiments and the baselines
also issue condition-based deletes and updates, so all three statement kinds
are supported.  Statements are plain descriptions; the
:class:`~repro.relational.database.Database` (optionally inside a
:class:`~repro.relational.transaction.Transaction`) applies them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.relational.conditions import Condition


@dataclass(frozen=True)
class Insert:
    """Insert a single row into ``table``.

    ``values`` may be positional (sequence) or named (mapping).
    """

    table: str
    values: tuple[Any, ...] | Mapping[str, Any]

    def describe(self) -> str:
        """Human-readable description used in logs and error messages."""
        return f"INSERT INTO {self.table} VALUES {self.values!r}"


@dataclass(frozen=True)
class Delete:
    """Delete rows from ``table``.

    Exactly one of ``values`` (a single fully specified row / key) or
    ``condition`` (delete all rows satisfying it) should be provided.  When
    both are ``None`` the statement deletes nothing (and is flagged by
    :meth:`is_blind`).
    """

    table: str
    values: tuple[Any, ...] | Mapping[str, Any] | None = None
    condition: Condition | None = None

    def is_blind(self) -> bool:
        """True if this is a single-tuple blind delete (resource-transaction style)."""
        return self.values is not None and self.condition is None

    def describe(self) -> str:
        """Human-readable description used in logs and error messages."""
        if self.values is not None:
            return f"DELETE {self.values!r} FROM {self.table}"
        return f"DELETE FROM {self.table} WHERE <condition>"


@dataclass(frozen=True)
class Update:
    """Update rows of ``table`` matching ``condition`` with ``assignments``.

    An update is executed as a delete of each matching row followed by an
    insert of the modified row, so key maintenance and WAL logging reuse the
    insert/delete paths.
    """

    table: str
    assignments: Mapping[str, Any]
    condition: Condition | None = None

    def describe(self) -> str:
        """Human-readable description used in logs and error messages."""
        sets = ", ".join(f"{k}={v!r}" for k, v in self.assignments.items())
        return f"UPDATE {self.table} SET {sets}"


#: Union type accepted by Database.apply / Transaction.apply.
Statement = Insert | Delete | Update
